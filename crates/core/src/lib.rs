//! **LDX: causality inference by lightweight dual execution** — the public
//! facade of the ASPLOS'16 reproduction.
//!
//! LDX decides whether a *sink* event (a network send, a file write, a
//! critical execution point) is **causally dependent** on a *source* event
//! (a secret file, an untrusted network input) — counterfactually: it runs
//! the program twice, perturbs the source in the second execution, and
//! watches whether anything changes at the sinks. A compiler pass
//! instruments the program with a progress counter so the two executions
//! stay aligned even when the perturbation changes which path (and which
//! syscalls) execute.
//!
//! This crate wires the pipeline together:
//!
//! ```text
//! Lx source ──compile──▶ IR ──instrument──▶ counters ──dual execute──▶ report
//!  (ldx-lang)        (ldx-ir)          (ldx-instrument)     (ldx-dualex)
//! ```
//!
//! # Quickstart
//!
//! ```
//! use ldx::{Analysis, SourceSpec};
//! use ldx::vos::{PeerBehavior, VosConfig};
//!
//! let report = Analysis::for_source(r#"
//!     fn main() {
//!         let secret = read(open("/etc/token", 0), 16);
//!         let msg = "ping";
//!         if (secret == "hunter2") { msg = "pong"; }   // control dep only
//!         send(connect("api.example"), msg);
//!     }
//! "#)?
//! .world(
//!     VosConfig::new()
//!         .file("/etc/token", "hunter2")
//!         .peer("api.example", PeerBehavior::Echo),
//! )
//! .source(SourceSpec::file("/etc/token"))
//! .run();
//!
//! assert!(report.leaked(), "the control-dependence leak is caught");
//! # Ok::<(), ldx::Error>(())
//! ```

pub mod batch;
pub mod cache;
mod explain;
mod extensions;
pub mod obs;
pub mod specfile;

pub use batch::{BatchEngine, BatchJob, BatchReport, JobResult};
pub use cache::{CachedInstrumented, InstrumentCache};
pub use explain::{
    matcher_desc, mutation_name, CausalChain, ChainMutation, ChainSink, ChainSyscall,
    ExplainReport, SourceSummary, StaticStep,
};
pub use extensions::{SourceAttribution, StrengthReport};

use ldx_dualex::dual_execute;
use ldx_instrument::InstrumentedProgram;
use ldx_ir::IrProgram;
use ldx_vos::VosConfig;
use std::sync::{Arc, OnceLock};

pub use ldx_dualex::{
    ByteDiff, CausalityKind, CausalityRecord, Decision, DualReport, DualSpec, FlightEvent,
    FlightLog, Mutation, ResourceId, SinkSpec, SourceMatcher, SourceSpec, TraceAction, TraceEvent,
};
pub use ldx_instrument::{instrument, InstrumentationReport};
pub use ldx_lang::LangError as Error;
pub use ldx_runtime::{ExecConfig, RunOutcome, RunStats, Trap, Value};
pub use ldx_taint::{TaintPolicy, TaintReport};

/// Re-export of the static program-dependence analysis (`ldx-sdep`):
/// PDG construction, sink-reachability pruning, and the soundness oracle.
pub use ldx_sdep as sdep;

/// Re-export of the virtual OS types used to describe worlds.
pub mod vos {
    pub use ldx_vos::{PeerBehavior, SlaveVos, Vos, VosConfig, VosError};
}

/// Re-export of the frontend/IR layers for advanced users.
pub mod compiler {
    pub use ldx_instrument::{
        check_counter_consistency, check_counter_consistency_all, instrument, CounterAnalysis,
        InstrumentedProgram,
    };
    pub use ldx_ir::{lower, IrProgram};
    pub use ldx_lang::{compile, parse, ResolvedProgram};
}

/// A fluent, end-to-end causality analysis.
///
/// Wraps compile → instrument → dual-execute. See the crate-level example.
#[derive(Debug, Clone)]
pub struct Analysis {
    program: Arc<IrProgram>,
    report: InstrumentationReport,
    world: VosConfig,
    spec: DualSpec,
    prune: bool,
    sdep_cache: Arc<OnceLock<Arc<sdep::StaticAnalysis>>>,
}

impl Analysis {
    /// Compiles and instruments Lx source.
    ///
    /// # Errors
    ///
    /// Returns the frontend [`Error`] on invalid source.
    pub fn for_source(source: &str) -> Result<Self, Error> {
        let _s = ldx_obs::span(ldx_obs::cat::COMPILE, "compile+instrument");
        let resolved = ldx_lang::compile(source)?;
        let instrumented = ldx_instrument::instrument(&ldx_ir::lower(&resolved));
        Ok(Self::for_instrumented(instrumented))
    }

    /// Starts from an already instrumented program.
    pub fn for_instrumented(instrumented: InstrumentedProgram) -> Self {
        let report = instrumented.report().clone();
        Analysis {
            program: Arc::new(instrumented.into_program()),
            report,
            world: VosConfig::new(),
            spec: DualSpec::default(),
            prune: true,
            sdep_cache: Arc::new(OnceLock::new()),
        }
    }

    /// Sets the virtual world the program runs against.
    pub fn world(mut self, world: VosConfig) -> Self {
        self.world = world;
        self
    }

    /// Adds a source to mutate.
    pub fn source(mut self, source: SourceSpec) -> Self {
        self.spec.sources.push(source);
        self
    }

    /// Sets the sink specification (default: all output syscalls).
    pub fn sinks(mut self, sinks: SinkSpec) -> Self {
        self.spec.sinks = sinks;
        self
    }

    /// Enables alignment-trace recording.
    pub fn traced(mut self) -> Self {
        self.spec.trace = true;
        self
    }

    /// Enables the divergence flight recorder (the evidence log behind
    /// [`Analysis::explain`]).
    pub fn recorded(mut self) -> Self {
        self.spec.record = true;
        self
    }

    /// Enables enforcement mode (the paper's original lockstep: the master
    /// blocks at sinks and loop barriers until the slave catches up).
    pub fn enforcing(mut self) -> Self {
        self.spec.enforcement = true;
        self
    }

    /// Overrides interpreter limits.
    pub fn exec_config(mut self, exec: ExecConfig) -> Self {
        self.spec.exec = exec;
        self
    }

    /// Disables the static pruning pre-filter: every per-source /
    /// per-probe dual execution runs even when `ldx-sdep` proves the pair
    /// independent (the `--no-prune` escape hatch).
    pub fn no_prune(mut self) -> Self {
        self.prune = false;
        self
    }

    /// Whether the static pruning pre-filter is active (default: yes).
    pub fn prune_enabled(&self) -> bool {
        self.prune
    }

    /// The static dependence analysis of the instrumented program,
    /// computed on first use and cached (shared across clones).
    pub fn static_analysis(&self) -> Arc<sdep::StaticAnalysis> {
        Arc::clone(
            self.sdep_cache
                .get_or_init(|| Arc::new(sdep::StaticAnalysis::analyze(&self.program))),
        )
    }

    /// The static instrumentation report (paper Table 1 columns).
    pub fn instrumentation_report(&self) -> &InstrumentationReport {
        &self.report
    }

    /// The instrumented program (e.g. for running baselines on it).
    pub fn program(&self) -> Arc<IrProgram> {
        Arc::clone(&self.program)
    }

    /// Runs the dual execution and returns the causality report.
    pub fn run(&self) -> DualReport {
        dual_execute(Arc::clone(&self.program), &self.world, &self.spec)
    }

    /// Packages this analysis as a [`BatchJob`] for the parallel engine.
    /// The program is shared by `Arc`; world and spec are cloned.
    pub fn batch_job(&self, label: impl Into<String>) -> BatchJob {
        BatchJob::new(label, self.program(), self.world.clone(), self.spec.clone())
    }

    /// Runs one of the dynamic taint-tracking baselines on the same
    /// program, world, sources, and sinks — for side-by-side comparison
    /// with [`Analysis::run`] (the paper's Table 3).
    pub fn run_taint(&self, policy: TaintPolicy) -> TaintReport {
        ldx_taint::taint_execute(
            &self.program,
            &self.world,
            &self.spec.sources,
            &self.spec.sinks,
            policy,
        )
    }

    /// The configured spec (used by the analysis extensions).
    pub fn spec(&self) -> &DualSpec {
        &self.spec
    }

    /// The configured world (used by the analysis extensions).
    pub fn world_ref(&self) -> &VosConfig {
        &self.world
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldx_vos::PeerBehavior;

    #[test]
    fn facade_pipeline_detects_leak() {
        let report = Analysis::for_source(
            r#"fn main() {
                let s = read(open("/s", 0), 8);
                send(connect("out"), s);
            }"#,
        )
        .unwrap()
        .world(
            VosConfig::new()
                .file("/s", "abc")
                .peer("out", PeerBehavior::Echo),
        )
        .source(SourceSpec::file("/s"))
        .run();
        assert!(report.leaked());
    }

    #[test]
    fn facade_reports_instrumentation_stats() {
        let analysis = Analysis::for_source(
            r#"fn main() {
                if (getpid() > 0) { write(1, "a"); write(1, "b"); }
                close(1);
            }"#,
        )
        .unwrap();
        let rep = analysis.instrumentation_report();
        assert!(rep.total_added_instrs() > 0);
        assert!(rep.max_cnt >= 3);
    }

    #[test]
    fn facade_rejects_bad_source() {
        assert!(Analysis::for_source("fn main( {").is_err());
    }

    #[test]
    fn taint_comparison_shows_the_papers_gap() {
        // The control-dependence leak: LDX reports, data tainting cannot.
        let analysis = Analysis::for_source(
            r#"fn main() {
                let s = trim(read(open("/s", 0), 8));
                let msg = "lo";
                if (s == "A") { msg = "hi"; }
                send(connect("out"), msg);
            }"#,
        )
        .unwrap()
        .world(
            VosConfig::new()
                .file("/s", "A")
                .peer("out", PeerBehavior::Echo),
        )
        .source(SourceSpec::file("/s"))
        .sinks(SinkSpec::NetworkOut);
        assert!(analysis.run().leaked());
        let tg = analysis.run_taint(TaintPolicy::TaintGrindLike);
        assert!(!tg.any_tainted(), "data tainting misses the control dep");
        let ctl = analysis.run_taint(TaintPolicy::DataAndControl);
        assert!(ctl.any_tainted());
    }

    #[test]
    fn traced_run_produces_trace() {
        let report = Analysis::for_source(
            r#"fn main() {
                let s = read(open("/s", 0), 4);
                write(1, s);
            }"#,
        )
        .unwrap()
        .world(VosConfig::new().file("/s", "data"))
        .source(SourceSpec::file("/s"))
        .sinks(SinkSpec::AllWrites)
        .traced()
        .run();
        assert!(!report.trace.is_empty());
        assert!(!report.trace_lines().is_empty());
    }
}
