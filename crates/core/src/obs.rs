//! Observability facade: re-exports [`ldx_obs`] and provides the shared
//! CLI wiring (`--trace <path>`, `--metrics <path>`) used by the `ldx`
//! binary and every bench binary.
//!
//! The contract all entry points follow:
//!
//! 1. [`parse_obs_args`] strips the observability flags from `argv`;
//! 2. [`init`] enables the right levels (metrics always; profiling when
//!    either flag is present; tracing only for `--trace`);
//! 3. the workload runs, instrumented throughout the workspace;
//! 4. [`finish`] writes the requested files, or — when no `--metrics`
//!    file was asked for — prints a compact one-line counters dump to
//!    stderr, keeping stdout byte-identical for result consumers.
//!
//! See `docs/OBSERVABILITY.md` for the span taxonomy and metric names.

pub use ldx_obs::*;

/// Counters every CLI run pre-registers, so metrics dumps always carry
/// the full key set even when a value never fired.
pub const DEFAULT_COUNTERS: &[&str] = &[
    "cache.hits",
    "cache.compiles",
    "batch.jobs",
    "batch.steals",
    "batch.refills",
    "batch.workers",
    "dualex.runs",
    "dualex.shared",
    "dualex.decoupled",
    "dualex.syscall_diffs",
    "dualex.master_sinks",
    "sdep.nodes",
    "sdep.edges",
    "sdep.sites",
    "sdep.pruned_pairs",
    "recorder.events",
    "recorder.dropped",
];

/// Parsed observability flags.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ObsArgs {
    /// `--trace <path>`: write a Chrome `trace_event` JSON file.
    pub trace: Option<String>,
    /// `--metrics <path>`: write the flat metrics JSON dump.
    pub metrics: Option<String>,
}

/// Splits `--trace <path>` / `--metrics <path>` out of an argument list,
/// returning the remaining arguments untouched (order preserved) and the
/// parsed flags. A flag missing its value is treated as absent.
pub fn parse_obs_args(args: Vec<String>) -> (Vec<String>, ObsArgs) {
    let mut rest = Vec::with_capacity(args.len());
    let mut obs = ObsArgs::default();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--trace" => obs.trace = it.next(),
            "--metrics" => obs.metrics = it.next(),
            _ => rest.push(arg),
        }
    }
    (rest, obs)
}

/// Enables observability for a CLI run: metrics always (the counters
/// replace the old ad-hoc stderr telemetry), profiling when any output
/// file was requested, tracing only when `--trace` was.
pub fn init(obs: &ObsArgs) {
    enable_metrics();
    ensure_counters(DEFAULT_COUNTERS);
    if obs.trace.is_some() || obs.metrics.is_some() {
        enable_profiling();
    }
    if obs.trace.is_some() {
        enable_tracing(DEFAULT_TRACE_CAPACITY);
    }
}

/// Writes the requested observability outputs. Without `--metrics`, the
/// counters go to stderr as one compact line (never stdout: the results
/// channel stays byte-identical).
///
/// # Errors
///
/// Returns the I/O error if a requested output file cannot be written.
pub fn finish(obs: &ObsArgs) -> std::io::Result<()> {
    if let Some(path) = &obs.trace {
        write_chrome_trace(path)?;
    }
    match &obs.metrics {
        Some(path) => write_metrics(path)?,
        None => eprintln!("metrics: {}", counters_json_line()),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flags_are_stripped_and_order_preserved() {
        let (rest, obs) = parse_obs_args(v(&[
            "prog.lx",
            "--trace",
            "t.json",
            "exp.ldx",
            "--metrics",
            "m.json",
        ]));
        assert_eq!(rest, v(&["prog.lx", "exp.ldx"]));
        assert_eq!(obs.trace.as_deref(), Some("t.json"));
        assert_eq!(obs.metrics.as_deref(), Some("m.json"));
    }

    #[test]
    fn absent_flags_parse_to_none() {
        let (rest, obs) = parse_obs_args(v(&["a", "b"]));
        assert_eq!(rest, v(&["a", "b"]));
        assert_eq!(obs, ObsArgs::default());
    }

    #[test]
    fn dangling_flag_is_absent() {
        let (rest, obs) = parse_obs_args(v(&["a", "--trace"]));
        assert_eq!(rest, v(&["a"]));
        assert!(obs.trace.is_none());
    }
}
