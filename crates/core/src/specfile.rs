//! Text format for describing an experiment: the world and the
//! source/sink specification. Used by the `ldx` command-line tool.
//!
//! The format is line-based; `#` starts a comment; strings with spaces are
//! double-quoted and support `\n`, `\t`, `\"`, `\\` escapes:
//!
//! ```text
//! # world
//! file /etc/token "hunter2"
//! dir /out
//! peer api.example echo
//! peer feed.example script "line one" "line two"
//! peer kv.example respond "GET /" "index page"
//! listen 80 "GET /a" "GET /b"
//! seed 42
//!
//! # analysis
//! source file /etc/token offbyone
//! source net api.example replace "tampered"
//! source client 80
//! source syscall random
//! sink network            # outputs | network | file | writes
//! sink site guard 0
//! trace
//! enforce
//! ```

use crate::{DualSpec, Mutation, SinkSpec, SourceMatcher, SourceSpec};
use ldx_vos::{PeerBehavior, VosConfig};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// A parsed experiment description.
#[derive(Debug, Clone)]
pub struct ExperimentFile {
    /// The world configuration.
    pub world: VosConfig,
    /// The analysis specification.
    pub spec: DualSpec,
}

/// A parse error with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecFileError {
    /// The offending line (1-based).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for SpecFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for SpecFileError {}

/// Parses an experiment file.
///
/// # Errors
///
/// Returns a [`SpecFileError`] pointing at the first malformed line.
pub fn parse_experiment(text: &str) -> Result<ExperimentFile, SpecFileError> {
    let mut world = VosConfig::new();
    let mut spec = DualSpec::default();

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let err = |message: String| SpecFileError {
            line: line_no,
            message,
        };
        let tokens = tokenize(raw).map_err(&err)?;
        let Some((head, rest)) = tokens.split_first() else {
            continue;
        };
        match head.as_str() {
            "file" => match rest {
                [path, contents] => world.set_file(path, contents.clone()),
                _ => return Err(err("usage: file <path> <contents>".into())),
            },
            "dir" => match rest {
                [path] => world.dirs.push(path.clone()),
                _ => return Err(err("usage: dir <path>".into())),
            },
            "peer" => match rest {
                [host, kind, args @ ..] => {
                    let behavior = match kind.as_str() {
                        "echo" => PeerBehavior::Echo,
                        "script" => PeerBehavior::Script(args.to_vec()),
                        "respond" => {
                            if args.len() % 2 != 0 {
                                return Err(err("respond needs request/reply pairs".into()));
                            }
                            let mut map = BTreeMap::new();
                            for pair in args.chunks(2) {
                                map.insert(pair[0].clone(), pair[1].clone());
                            }
                            PeerBehavior::Respond(map)
                        }
                        other => {
                            return Err(err(format!(
                                "unknown peer kind `{other}` (echo|script|respond)"
                            )))
                        }
                    };
                    world.peers.push((host.clone(), behavior));
                }
                _ => return Err(err("usage: peer <host> <kind> [args...]".into())),
            },
            "listen" => match rest {
                [port, requests @ ..] => {
                    let port: i64 = port
                        .parse()
                        .map_err(|_| err(format!("bad port `{port}`")))?;
                    world.listen.push((port, requests.to_vec()));
                }
                _ => return Err(err("usage: listen <port> <request>...".into())),
            },
            "seed" => match rest {
                [s] => world.rng_seed = s.parse().map_err(|_| err(format!("bad seed `{s}`")))?,
                _ => return Err(err("usage: seed <u64>".into())),
            },
            "source" => {
                let (matcher, mutation_tokens) = match rest {
                    [kind, arg, rest2 @ ..] => {
                        let matcher = match kind.as_str() {
                            "file" => SourceMatcher::FileRead(arg.clone()),
                            "net" => SourceMatcher::NetRecv(arg.clone()),
                            "client" => SourceMatcher::ClientRecv(
                                arg.parse().map_err(|_| err(format!("bad port `{arg}`")))?,
                            ),
                            "syscall" => {
                                let sys = ldx_lang::Syscall::ALL
                                    .iter()
                                    .find(|s| s.name() == arg)
                                    .copied()
                                    .ok_or_else(|| err(format!("unknown syscall `{arg}`")))?;
                                SourceMatcher::SyscallKind(sys)
                            }
                            "site" => {
                                let site = rest2
                                    .first()
                                    .and_then(|s| s.parse().ok())
                                    .ok_or_else(|| err("usage: source site <fn> <n>".into()))?;
                                spec.sources.push(SourceSpec {
                                    matcher: SourceMatcher::Site(arg.clone(), site),
                                    mutation: parse_mutation(&rest2[1..]).map_err(err)?,
                                });
                                continue;
                            }
                            other => {
                                return Err(err(format!(
                                    "unknown source kind `{other}` (file|net|client|syscall|site)"
                                )))
                            }
                        };
                        (matcher, rest2)
                    }
                    _ => return Err(err("usage: source <kind> <arg> [mutation]".into())),
                };
                spec.sources.push(SourceSpec {
                    matcher,
                    mutation: parse_mutation(mutation_tokens).map_err(err)?,
                });
            }
            "sink" => match rest {
                [kind] => {
                    spec.sinks = match kind.as_str() {
                        "outputs" => SinkSpec::Outputs,
                        "network" => SinkSpec::NetworkOut,
                        "file" => SinkSpec::FileOut,
                        "writes" => SinkSpec::AllWrites,
                        other => {
                            return Err(err(format!(
                                "unknown sink kind `{other}` (outputs|network|file|writes|site)"
                            )))
                        }
                    }
                }
                [site_kw, func, n] if site_kw == "site" => {
                    let n: u32 = n.parse().map_err(|_| err(format!("bad site `{n}`")))?;
                    match &mut spec.sinks {
                        SinkSpec::Sites(sites) => sites.push((func.clone(), n)),
                        other => *other = SinkSpec::Sites(vec![(func.clone(), n)]),
                    }
                }
                _ => return Err(err("usage: sink <kind> | sink site <fn> <n>".into())),
            },
            "trace" => spec.trace = true,
            "enforce" => spec.enforcement = true,
            other => return Err(err(format!("unknown directive `{other}`"))),
        }
    }
    Ok(ExperimentFile { world, spec })
}

fn parse_mutation(tokens: &[String]) -> Result<Mutation, String> {
    match tokens {
        [] | [_] if tokens.first().map(String::as_str) == Some("offbyone") || tokens.is_empty() => {
            Ok(Mutation::OffByOne)
        }
        [kind] => match kind.as_str() {
            "offbyone" => Ok(Mutation::OffByOne),
            "bitflip" => Ok(Mutation::BitFlip),
            "zero" => Ok(Mutation::Zero),
            "identity" => Ok(Mutation::Identity),
            other => Err(format!("unknown mutation `{other}`")),
        },
        [kind, arg] => match kind.as_str() {
            "replace" => Ok(Mutation::Replace(arg.clone())),
            "setint" => arg
                .parse()
                .map(Mutation::SetInt)
                .map_err(|_| format!("bad integer `{arg}`")),
            other => Err(format!("unknown mutation `{other}`")),
        },
        _ => Err("too many mutation arguments".into()),
    }
}

/// Splits a line into tokens; double-quoted tokens may contain spaces and
/// escapes. `#` outside quotes starts a comment.
fn tokenize(line: &str) -> Result<Vec<String>, String> {
    let mut tokens = Vec::new();
    let mut chars = line.chars().peekable();
    loop {
        while matches!(chars.peek(), Some(c) if c.is_whitespace()) {
            chars.next();
        }
        match chars.peek() {
            None | Some('#') => return Ok(tokens),
            Some('"') => {
                chars.next();
                let mut tok = String::new();
                loop {
                    match chars.next() {
                        None => return Err("unterminated quote".into()),
                        Some('"') => break,
                        Some('\\') => match chars.next() {
                            Some('n') => tok.push('\n'),
                            Some('t') => tok.push('\t'),
                            Some('"') => tok.push('"'),
                            Some('\\') => tok.push('\\'),
                            other => {
                                return Err(format!("bad escape `\\{}`", other.unwrap_or(' ')))
                            }
                        },
                        Some(c) => tok.push(c),
                    }
                }
                tokens.push(tok);
            }
            Some(_) => {
                let mut tok = String::new();
                while matches!(chars.peek(), Some(c) if !c.is_whitespace() && *c != '#') {
                    tok.push(chars.next().expect("peeked"));
                }
                tokens.push(tok);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizer_handles_quotes_comments_escapes() {
        assert_eq!(
            tokenize(r#"file /a "hello world\n"  # comment"#).unwrap(),
            vec!["file", "/a", "hello world\n"]
        );
        assert_eq!(tokenize("   # only comment").unwrap(), Vec::<String>::new());
        assert!(tokenize(r#"bad "unterminated"#).is_err());
    }

    #[test]
    fn parses_full_experiment() {
        let text = r#"
            # the world
            file /etc/token "hunter2"
            dir /out
            peer api.example echo
            peer feed.example script "l1" "l2"
            peer kv.example respond "GET /" "index"
            listen 80 "GET /a" "GET /b"
            seed 42

            source file /etc/token offbyone
            source net api.example replace "tampered"
            source syscall random
            sink network
            trace
        "#;
        let exp = parse_experiment(text).unwrap();
        assert_eq!(exp.world.file_contents("/etc/token"), Some("hunter2"));
        assert_eq!(exp.world.dirs, vec!["/out"]);
        assert_eq!(exp.world.peers.len(), 3);
        assert_eq!(exp.world.listen[0].1.len(), 2);
        assert_eq!(exp.world.rng_seed, 42);
        assert_eq!(exp.spec.sources.len(), 3);
        assert_eq!(
            exp.spec.sources[1].mutation,
            Mutation::Replace("tampered".into())
        );
        assert_eq!(exp.spec.sinks, SinkSpec::NetworkOut);
        assert!(exp.spec.trace);
        assert!(!exp.spec.enforcement);
    }

    #[test]
    fn parses_site_sinks_accumulating() {
        let exp = parse_experiment("sink site guard 0\nsink site check 2\n").unwrap();
        let SinkSpec::Sites(sites) = &exp.spec.sinks else {
            panic!()
        };
        assert_eq!(sites.len(), 2);
        assert_eq!(sites[1], ("check".to_string(), 2));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_experiment("file /a \"x\"\nbogus directive\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("bogus"));
    }

    #[test]
    fn default_mutation_is_off_by_one() {
        let exp = parse_experiment("source file /x\n").unwrap();
        assert_eq!(exp.spec.sources[0].mutation, Mutation::OffByOne);
    }

    #[test]
    fn enforce_flag() {
        let exp = parse_experiment("enforce\n").unwrap();
        assert!(exp.spec.enforcement);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(parse_experiment("peer h nonsense\n").is_err());
        assert!(parse_experiment("listen notaport\n").is_err());
        assert!(parse_experiment("source file /x teleport\n").is_err());
        assert!(parse_experiment("sink plasma\n").is_err());
    }
}
