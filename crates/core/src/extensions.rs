//! Analysis extensions beyond the paper's core engine.
//!
//! * [`Analysis::attribute_sources`] — the paper runs *all* sources mutated
//!   at once ("It does not require running multiple times for individual
//!   sources", §3) and reports that *some* source is causal. When an
//!   analyst needs to know **which**, this extension re-runs the dual
//!   execution once per source and returns the per-source verdicts.
//! * [`Analysis::causal_strength`] — §2 defines causal *strength*: a strong
//!   cause is a one-to-one mapping from source values to sink values; weak
//!   causes are many-to-one. The engine's single off-by-one run detects
//!   strong causality; this extension probes with a battery of distinct
//!   mutations and reports the fraction that flipped a sink — an empirical
//!   strength score (1.0 = every perturbation observable = strong;
//!   near 0.0 = most perturbations absorbed = weak).

use crate::{Analysis, BatchEngine, BatchJob};
use ldx_dualex::{DualReport, DualSpec, Mutation, SourceSpec};
use ldx_runtime::{RunOutcome, RunStats, Value};

/// Verdict for one source (see [`Analysis::attribute_sources`]).
#[derive(Debug, Clone)]
pub struct SourceAttribution {
    /// Index into the analysis' source list.
    pub index: usize,
    /// The source specification.
    pub source: SourceSpec,
    /// Whether mutating *only* this source produced causality.
    pub causal: bool,
    /// The dual execution was skipped because `ldx-sdep` proved the
    /// (source, sinks) pair statically independent. Implies `!causal`,
    /// and `report` is an empty placeholder.
    pub pruned: bool,
    /// The per-source dual-execution report.
    pub report: DualReport,
}

/// The placeholder report attached to statically pruned pairs: no runs
/// happened, so every field is the "nothing observed" value.
fn pruned_report() -> DualReport {
    let outcome = || RunOutcome {
        exit_code: 0,
        result: Value::Int(0),
        stats: RunStats::default(),
    };
    DualReport {
        causality: vec![],
        master: Ok(outcome()),
        slave: Ok(outcome()),
        syscall_diffs: 0,
        shared: 0,
        decoupled: 0,
        master_sinks: 0,
        trace: vec![],
        flight: ldx_dualex::FlightLog::default(),
    }
}

/// Empirical causal-strength estimate (see [`Analysis::causal_strength`]).
#[derive(Debug, Clone)]
pub struct StrengthReport {
    /// Mutations that produced a sink difference.
    pub flipped: usize,
    /// Mutations probed.
    pub probed: usize,
}

impl StrengthReport {
    /// The strength score in `[0, 1]`: 1.0 means every probe was observable
    /// at the sinks (a one-to-one, *strong* causality in §2's terms).
    pub fn score(&self) -> f64 {
        if self.probed == 0 {
            0.0
        } else {
            self.flipped as f64 / self.probed as f64
        }
    }

    /// Whether the causality behaves as a strong (one-to-one) cause.
    pub fn is_strong(&self) -> bool {
        self.probed > 0 && self.flipped == self.probed
    }
}

impl Analysis {
    /// Re-runs the dual execution once per configured source, mutating only
    /// that source, and reports which of them are individually causal.
    ///
    /// The per-source runs are independent, so they fan out on an
    /// auto-sized [`BatchEngine`]; use [`Analysis::attribute_sources_with`]
    /// to control (or share) the pool.
    pub fn attribute_sources(&self) -> Vec<SourceAttribution> {
        self.attribute_sources_with(&BatchEngine::auto())
    }

    /// [`Analysis::attribute_sources`] on a caller-provided pool. Results
    /// are in source order regardless of the schedule.
    ///
    /// With pruning enabled (the default), sources `ldx-sdep` proves
    /// statically independent of the sinks skip their dual execution
    /// entirely and come back with [`SourceAttribution::pruned`] set; the
    /// skips are counted in the `sdep.pruned_pairs` metric. Every report
    /// that *does* run is checked against the static map (the soundness
    /// oracle) in debug builds.
    pub fn attribute_sources_with(&self, engine: &BatchEngine) -> Vec<SourceAttribution> {
        let spec = self.spec();
        let sdep = self.prune_enabled().then(|| self.static_analysis());
        let should_run: Vec<bool> = spec
            .sources
            .iter()
            .map(|source| {
                sdep.as_ref()
                    .is_none_or(|a| a.may_cause(source, &spec.sinks))
            })
            .collect();
        let pruned_count = should_run.iter().filter(|run| !**run).count();
        if pruned_count > 0 {
            crate::obs::counter_add("sdep.pruned_pairs", pruned_count as u64);
        }
        let jobs = spec
            .sources
            .iter()
            .enumerate()
            .filter(|&(index, _)| should_run[index])
            .map(|(index, source)| {
                let single = DualSpec {
                    sources: vec![source.clone()],
                    sinks: spec.sinks.clone(),
                    trace: false,
                    record: spec.record,
                    enforcement: false,
                    exec: spec.exec,
                };
                BatchJob::new(
                    format!("source#{index}"),
                    self.program(),
                    self.world_ref().clone(),
                    single,
                )
            })
            .collect();
        let mut results = engine.run(jobs).results.into_iter();
        spec.sources
            .iter()
            .enumerate()
            .map(|(index, source)| {
                if !should_run[index] {
                    return SourceAttribution {
                        index,
                        source: source.clone(),
                        causal: false,
                        pruned: true,
                        report: pruned_report(),
                    };
                }
                let report = results.next().expect("one result per scheduled job").report;
                if let Some(analysis) = &sdep {
                    debug_assert!(
                        analysis
                            .check_report(std::slice::from_ref(source), &report)
                            .is_ok(),
                        "soundness oracle: causality record outside the static map \
                         for source #{index} ({source:?})"
                    );
                }
                SourceAttribution {
                    index,
                    source: source.clone(),
                    causal: report.leaked(),
                    pruned: false,
                    report,
                }
            })
            .collect()
    }

    /// Probes the first source with a battery of distinct mutations and
    /// reports how many were observable at the sinks.
    ///
    /// The default battery holds the off-by-one family plus bit-flip and
    /// zeroing; pass extra `probes` to extend it (e.g. domain-specific
    /// replacements).
    pub fn causal_strength(&self, probes: &[Mutation]) -> StrengthReport {
        self.causal_strength_with(&BatchEngine::auto(), probes)
    }

    /// [`Analysis::causal_strength`] on a caller-provided pool: the whole
    /// battery runs as one batch.
    ///
    /// With pruning enabled, probes whose (mutated source, sinks) pair is
    /// statically independent never run — they count as probed but not
    /// flipped, exactly what the dual execution would have concluded.
    pub fn causal_strength_with(
        &self,
        engine: &BatchEngine,
        probes: &[Mutation],
    ) -> StrengthReport {
        let spec = self.spec();
        let Some(base) = spec.sources.first() else {
            return StrengthReport {
                flipped: 0,
                probed: 0,
            };
        };
        let mut battery = vec![Mutation::OffByOne, Mutation::BitFlip, Mutation::Zero];
        battery.extend(probes.iter().cloned());
        let sdep = self.prune_enabled().then(|| self.static_analysis());
        let should_run: Vec<bool> = battery
            .iter()
            .map(|mutation| {
                sdep.as_ref().is_none_or(|a| {
                    a.may_cause(
                        &SourceSpec {
                            matcher: base.matcher.clone(),
                            mutation: mutation.clone(),
                        },
                        &spec.sinks,
                    )
                })
            })
            .collect();
        let pruned_count = should_run.iter().filter(|run| !**run).count();
        if pruned_count > 0 {
            crate::obs::counter_add("sdep.pruned_pairs", pruned_count as u64);
        }
        let jobs = battery
            .iter()
            .enumerate()
            .filter(|&(index, _)| should_run[index])
            .map(|(index, mutation)| {
                let single = DualSpec {
                    sources: vec![SourceSpec {
                        matcher: base.matcher.clone(),
                        mutation: mutation.clone(),
                    }],
                    sinks: spec.sinks.clone(),
                    trace: false,
                    record: spec.record,
                    enforcement: false,
                    exec: spec.exec,
                };
                BatchJob::new(
                    format!("probe#{index}"),
                    self.program(),
                    self.world_ref().clone(),
                    single,
                )
            })
            .collect();
        let batch = engine.run(jobs);
        StrengthReport {
            flipped: batch.leaks(),
            probed: battery.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SinkSpec;
    use ldx_vos::{PeerBehavior, VosConfig};

    fn two_source_analysis() -> Analysis {
        Analysis::for_source(
            r#"fn main() {
                let a = read(open("/a", 0), 8);
                let b = read(open("/b", 0), 8);
                send(connect("out"), "payload=" + a);
            }"#,
        )
        .unwrap()
        .world(
            VosConfig::new()
                .file("/a", "used")
                .file("/b", "unused")
                .peer("out", PeerBehavior::Echo),
        )
        .source(SourceSpec::file("/a"))
        .source(SourceSpec::file("/b"))
        .sinks(SinkSpec::NetworkOut)
    }

    #[test]
    fn attribution_separates_causal_from_inert_sources() {
        let analysis = two_source_analysis();
        // The combined run reports causality...
        assert!(analysis.run().leaked());
        // ...and attribution pins it on /a alone.
        let attributions = analysis.attribute_sources();
        assert_eq!(attributions.len(), 2);
        assert!(attributions[0].causal, "/a flows to the sink");
        assert!(!attributions[1].causal, "/b does not");
    }

    #[test]
    fn pruning_skips_inert_sources_without_changing_verdicts() {
        let pruned = two_source_analysis().attribute_sources();
        let full = two_source_analysis().no_prune().attribute_sources();
        assert!(pruned[1].pruned, "/b is statically independent");
        assert!(!pruned[0].pruned, "/a must still run");
        assert!(full.iter().all(|a| !a.pruned), "--no-prune runs everything");
        for (p, f) in pruned.iter().zip(&full) {
            assert_eq!(p.causal, f.causal, "pruning must not change verdicts");
        }
    }

    #[test]
    fn strength_strong_for_one_to_one() {
        let analysis = Analysis::for_source(
            r#"fn main() {
                let v = read(open("/a", 0), 8);
                send(connect("out"), v);
            }"#,
        )
        .unwrap()
        .world(
            VosConfig::new()
                .file("/a", "value")
                .peer("out", PeerBehavior::Echo),
        )
        .source(SourceSpec::file("/a"))
        .sinks(SinkSpec::NetworkOut);
        let strength = analysis.causal_strength(&[]);
        assert!(strength.is_strong(), "{strength:?}");
        assert_eq!(strength.score(), 1.0);
    }

    #[test]
    fn strength_weak_for_many_to_one() {
        // Sink reveals only `len(v) > 100`: absorbed by every mutation in
        // the battery (a weak cause in the paper's §2 sense).
        let analysis = Analysis::for_source(
            r#"fn main() {
                let v = read(open("/a", 0), 200);
                let big = 0;
                if (len(v) > 100) { big = 1; }
                send(connect("out"), str(big));
            }"#,
        )
        .unwrap()
        .world(
            VosConfig::new()
                .file("/a", "short")
                .peer("out", PeerBehavior::Echo),
        )
        .source(SourceSpec::file("/a"))
        .sinks(SinkSpec::NetworkOut);
        let strength = analysis.causal_strength(&[]);
        assert_eq!(strength.flipped, 0, "{strength:?}");
        assert!(!strength.is_strong());
    }

    #[test]
    fn strength_partial_for_threshold_predicates() {
        // Sink reveals v >= 10 at v=10: off-by-one (11) keeps it, zeroing
        // flips it — a partially observable cause.
        let analysis = Analysis::for_source(
            r#"fn main() {
                let v = int(read(open("/a", 0), 8));
                let c = 0;
                if (v >= 10) { c = 1; }
                send(connect("out"), str(c));
            }"#,
        )
        .unwrap()
        .world(
            VosConfig::new()
                .file("/a", "10")
                .peer("out", PeerBehavior::Echo),
        )
        .source(SourceSpec::file("/a"))
        .sinks(SinkSpec::NetworkOut);
        let strength = analysis.causal_strength(&[]);
        assert!(strength.flipped > 0 && strength.flipped < strength.probed);
        assert!(strength.score() > 0.0 && strength.score() < 1.0);
    }
}
