//! The `ldx` command-line tool: run a causality analysis on an Lx program.
//!
//! ```console
//! $ ldx <program.lx> [experiment.ldx] [--attribute] [--strength] [--taint]
//!       [--explain] [--no-prune] [--trace <out.json>] [--metrics <out.json>]
//! $ ldx analyze <program.lx> [--json <out.json>] [--dot <out.dot>]
//! $ ldx explain <program.lx> [experiment.ldx] [--json <out.json>] [--no-prune]
//! ```
//!
//! The experiment file describes the world (files, peers, clients) and the
//! analysis (sources, sinks, trace/enforce flags); see [`ldx::specfile`]
//! for the format. Without one, the program runs in an empty world with
//! the default sink specification.
//!
//! `--attribute` and `--strength` skip dual executions for pairs the
//! static analysis (`ldx-sdep`) proves independent; `--no-prune` disables
//! that pre-filter. The `analyze` subcommand runs only the static analysis
//! and emits the dependence graph and per-site reachability as JSON (the
//! shape of `schemas/sdep_schema.json`; stdout by default, or `--json`)
//! and Graphviz DOT (`--dot`). See `docs/ANALYSIS.md`.
//!
//! The `explain` subcommand runs the per-source attribution with the
//! divergence flight recorder on and emits the causal provenance chains
//! (mutated source → first decoupled/compared syscall → tainted
//! resources → diverging sink, cross-referenced against the static PDG
//! path) as deterministic JSON (`schemas/explain_schema.json`; stdout by
//! default, or `--json`). `--explain` on the default path prints the
//! terminal rendering after the run. See `docs/OBSERVABILITY.md`.
//!
//! `--trace` writes a Chrome `trace_event` JSON of the run (open in
//! Perfetto); `--metrics` writes the flat metrics dump. See
//! `docs/OBSERVABILITY.md`.

use ldx::obs;
use ldx::specfile::parse_experiment;
use ldx::Analysis;
use std::process::ExitCode;

/// `ldx analyze <program.lx> [--json <path>] [--dot <path>]`: static
/// analysis only, no execution.
fn run_analyze(args: &[String], obs_args: &obs::ObsArgs) -> ExitCode {
    let mut program_path = None;
    let mut json_path = None;
    let mut dot_path = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json_path = it.next(),
            "--dot" => dot_path = it.next(),
            _ if !arg.starts_with("--") && program_path.is_none() => program_path = Some(arg),
            _ => {
                eprintln!("usage: ldx analyze <program.lx> [--json <out.json>] [--dot <out.dot>]");
                return ExitCode::from(2);
            }
        }
    }
    let Some(program_path) = program_path else {
        eprintln!("usage: ldx analyze <program.lx> [--json <out.json>] [--dot <out.dot>]");
        return ExitCode::from(2);
    };
    let source = match std::fs::read_to_string(program_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {program_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let analysis = match Analysis::for_source(&source) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{program_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let program = analysis.program();
    let sdep = analysis.static_analysis();
    let json = ldx::sdep::analysis_to_json(&program, &sdep, program_path);
    match json_path {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::from(2);
            }
        }
        None => print!("{json}"),
    }
    if let Some(path) = dot_path {
        let dot = ldx::sdep::pdg_to_dot(&program, &sdep);
        if let Err(e) = std::fs::write(path, &dot) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::from(2);
        }
    }
    if let Err(e) = obs::finish(obs_args) {
        eprintln!("cannot write observability output: {e}");
        return ExitCode::from(2);
    }
    ExitCode::SUCCESS
}

/// Compiles `program_path` and applies `experiment_path` (when given),
/// printing a diagnostic and returning an exit code on failure.
fn build_analysis(program_path: &str, experiment_path: Option<&str>) -> Result<Analysis, ExitCode> {
    let source = match std::fs::read_to_string(program_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {program_path}: {e}");
            return Err(ExitCode::from(2));
        }
    };
    let mut analysis = match Analysis::for_source(&source) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{program_path}: {e}");
            return Err(ExitCode::from(2));
        }
    };
    if let Some(experiment_path) = experiment_path {
        let experiment_text = match std::fs::read_to_string(experiment_path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read {experiment_path}: {e}");
                return Err(ExitCode::from(2));
            }
        };
        let experiment = match parse_experiment(&experiment_text) {
            Ok(e) => e,
            Err(e) => {
                eprintln!("{experiment_path}: {e}");
                return Err(ExitCode::from(2));
            }
        };
        analysis = analysis.world(experiment.world);
        for s in experiment.spec.sources {
            analysis = analysis.source(s);
        }
        analysis = analysis.sinks(experiment.spec.sinks);
        if experiment.spec.trace {
            analysis = analysis.traced();
        }
        if experiment.spec.enforcement {
            analysis = analysis.enforcing();
        }
    }
    Ok(analysis)
}

/// `ldx explain <program.lx> [experiment.ldx] [--json <path>]
/// [--no-prune]`: causal provenance chains as deterministic JSON (stdout
/// unless `--json`), with the terminal rendering on stderr.
fn run_explain(args: &[String], obs_args: &obs::ObsArgs) -> ExitCode {
    const USAGE: &str =
        "usage: ldx explain <program.lx> [experiment.ldx] [--json <out.json>] [--no-prune]";
    let mut files = Vec::new();
    let mut json_path = None;
    let mut no_prune = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json_path = it.next(),
            "--no-prune" => no_prune = true,
            _ if !arg.starts_with("--") && files.len() < 2 => files.push(arg.as_str()),
            _ => {
                eprintln!("{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(&program_path) = files.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let mut analysis = match build_analysis(program_path, files.get(1).copied()) {
        Ok(a) => a,
        Err(code) => return code,
    };
    if no_prune {
        analysis = analysis.no_prune();
    }
    let report = analysis.explain(program_path);
    eprint!("{}", report.render_text());
    let json = report.to_json();
    match json_path {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::from(2);
            }
        }
        None => print!("{json}"),
    }
    if let Err(e) = obs::finish(obs_args) {
        eprintln!("cannot write observability output: {e}");
        return ExitCode::from(2);
    }
    ExitCode::from(u8::from(report.any_causal()))
}

fn main() -> ExitCode {
    let (args, obs_args) = obs::parse_obs_args(std::env::args().skip(1).collect());
    obs::init(&obs_args);
    if args.first().map(String::as_str) == Some("analyze") {
        return run_analyze(&args[1..], &obs_args);
    }
    if args.first().map(String::as_str) == Some("explain") {
        return run_explain(&args[1..], &obs_args);
    }
    let flags: Vec<&str> = args
        .iter()
        .filter(|a| a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let files: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let (program_path, experiment_path) = match files.as_slice() {
        [program] => (*program, None),
        [program, experiment] => (*program, Some(*experiment)),
        _ => {
            eprintln!(
                "usage: ldx <program.lx> [experiment.ldx] [--attribute] [--strength] [--taint] \
                 [--explain] [--no-prune] [--trace <out.json>] [--metrics <out.json>]\n\
                 \x20      ldx analyze <program.lx> [--json <out.json>] [--dot <out.dot>]\n\
                 \x20      ldx explain <program.lx> [experiment.ldx] [--json <out.json>] \
                 [--no-prune]"
            );
            return ExitCode::from(2);
        }
    };

    let mut analysis = match build_analysis(program_path, experiment_path.map(String::as_str)) {
        Ok(a) => a,
        Err(code) => return code,
    };
    if flags.contains(&"--no-prune") {
        analysis = analysis.no_prune();
    }

    let instr = analysis.instrumentation_report();
    obs::counter_add(
        "instrument.original_instrs",
        instr.total_original_instrs() as u64,
    );
    obs::counter_add("instrument.added_instrs", instr.total_added_instrs() as u64);
    obs::counter_add("instrument.loops", instr.total_loops() as u64);
    obs::counter_max("instrument.max_cnt", instr.max_cnt);

    let report = analysis.run();
    for line in report.trace_lines() {
        println!("trace: {line}");
    }
    println!(
        "shared={} decoupled={} syscall_diffs={} master_sinks={}",
        report.shared, report.decoupled, report.syscall_diffs, report.master_sinks
    );

    if flags.contains(&"--attribute") {
        for attr in analysis.attribute_sources() {
            println!(
                "source #{} {:?}: {}",
                attr.index,
                attr.source.matcher,
                if attr.pruned {
                    "inert (statically pruned)"
                } else if attr.causal {
                    "CAUSAL"
                } else {
                    "inert"
                }
            );
        }
    }
    if flags.contains(&"--taint") {
        for policy in [
            ldx::TaintPolicy::TaintGrindLike,
            ldx::TaintPolicy::LibDftLike,
        ] {
            let t = analysis.run_taint(policy);
            println!(
                "{}: {} / {} sinks tainted",
                policy.name(),
                t.tainted_sink_instances,
                t.total_sink_instances
            );
        }
    }
    if flags.contains(&"--strength") {
        let s = analysis.causal_strength(&[]);
        println!(
            "strength: {}/{} probes observable (score {:.2})",
            s.flipped,
            s.probed,
            s.score()
        );
    }
    if flags.contains(&"--explain") {
        print!("{}", analysis.explain(program_path).render_text());
    }

    if let Err(e) = obs::finish(&obs_args) {
        eprintln!("cannot write observability output: {e}");
        return ExitCode::from(2);
    }

    if report.leaked() {
        println!("CAUSALITY DETECTED ({} records):", report.causality.len());
        for c in &report.causality {
            println!("  {c}");
        }
        ExitCode::from(1)
    } else {
        println!("no causality between the configured sources and sinks");
        ExitCode::SUCCESS
    }
}
