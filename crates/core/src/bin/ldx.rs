//! The `ldx` command-line tool: run a causality analysis on an Lx program.
//!
//! ```console
//! $ ldx <program.lx> [experiment.ldx] [--attribute] [--strength] [--taint]
//!       [--trace <out.json>] [--metrics <out.json>]
//! ```
//!
//! The experiment file describes the world (files, peers, clients) and the
//! analysis (sources, sinks, trace/enforce flags); see [`ldx::specfile`]
//! for the format. Without one, the program runs in an empty world with
//! the default sink specification.
//!
//! `--trace` writes a Chrome `trace_event` JSON of the run (open in
//! Perfetto); `--metrics` writes the flat metrics dump. See
//! `docs/OBSERVABILITY.md`.

use ldx::obs;
use ldx::specfile::parse_experiment;
use ldx::Analysis;
use std::process::ExitCode;

fn main() -> ExitCode {
    let (args, obs_args) = obs::parse_obs_args(std::env::args().skip(1).collect());
    obs::init(&obs_args);
    let flags: Vec<&str> = args
        .iter()
        .filter(|a| a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let files: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let (program_path, experiment_path) = match files.as_slice() {
        [program] => (*program, None),
        [program, experiment] => (*program, Some(*experiment)),
        _ => {
            eprintln!(
                "usage: ldx <program.lx> [experiment.ldx] [--attribute] [--strength] [--taint] \
                 [--trace <out.json>] [--metrics <out.json>]"
            );
            return ExitCode::from(2);
        }
    };

    let source = match std::fs::read_to_string(program_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {program_path}: {e}");
            return ExitCode::from(2);
        }
    };

    let mut analysis = match Analysis::for_source(&source) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{program_path}: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(experiment_path) = experiment_path {
        let experiment_text = match std::fs::read_to_string(experiment_path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read {experiment_path}: {e}");
                return ExitCode::from(2);
            }
        };
        let experiment = match parse_experiment(&experiment_text) {
            Ok(e) => e,
            Err(e) => {
                eprintln!("{experiment_path}: {e}");
                return ExitCode::from(2);
            }
        };
        analysis = analysis.world(experiment.world);
        for s in experiment.spec.sources {
            analysis = analysis.source(s);
        }
        analysis = analysis.sinks(experiment.spec.sinks);
        if experiment.spec.trace {
            analysis = analysis.traced();
        }
        if experiment.spec.enforcement {
            analysis = analysis.enforcing();
        }
    }

    let instr = analysis.instrumentation_report();
    obs::counter_add(
        "instrument.original_instrs",
        instr.total_original_instrs() as u64,
    );
    obs::counter_add("instrument.added_instrs", instr.total_added_instrs() as u64);
    obs::counter_add("instrument.loops", instr.total_loops() as u64);
    obs::counter_max("instrument.max_cnt", instr.max_cnt);

    let report = analysis.run();
    for line in report.trace_lines() {
        println!("trace: {line}");
    }
    println!(
        "shared={} decoupled={} syscall_diffs={} master_sinks={}",
        report.shared, report.decoupled, report.syscall_diffs, report.master_sinks
    );

    if flags.contains(&"--attribute") {
        for attr in analysis.attribute_sources() {
            println!(
                "source #{} {:?}: {}",
                attr.index,
                attr.source.matcher,
                if attr.causal { "CAUSAL" } else { "inert" }
            );
        }
    }
    if flags.contains(&"--taint") {
        for policy in [
            ldx::TaintPolicy::TaintGrindLike,
            ldx::TaintPolicy::LibDftLike,
        ] {
            let t = analysis.run_taint(policy);
            println!(
                "{}: {} / {} sinks tainted",
                policy.name(),
                t.tainted_sink_instances,
                t.total_sink_instances
            );
        }
    }
    if flags.contains(&"--strength") {
        let s = analysis.causal_strength(&[]);
        println!(
            "strength: {}/{} probes observable (score {:.2})",
            s.flipped,
            s.probed,
            s.score()
        );
    }

    if let Err(e) = obs::finish(&obs_args) {
        eprintln!("cannot write observability output: {e}");
        return ExitCode::from(2);
    }

    if report.leaked() {
        println!("CAUSALITY DETECTED ({} records):", report.causality.len());
        for c in &report.causality {
            println!("  {c}");
        }
        ExitCode::from(1)
    } else {
        println!("no causality between the configured sources and sinks");
        ExitCode::SUCCESS
    }
}
