//! Parallel batch execution: a bounded work-stealing scheduler for corpora
//! of dual executions.
//!
//! The engine accepts [`BatchJob`]s — (instrumented program, world, spec)
//! triples — and runs them concurrently on a pool of OS threads. Three
//! properties drive the design:
//!
//! * **Bounded fan-out.** Every dual execution internally spawns a
//!   master and a slave interpreter thread, so the pool is capped at
//!   `min(requested, available_parallelism() / 2)` workers — two OS
//!   threads per in-flight job — and never oversubscribes the host even
//!   when callers request huge pools.
//! * **Work stealing.** Jobs land in a global injector; each worker
//!   drains a small local deque, refills it in batches from the injector,
//!   and steals FIFO from siblings when both run dry. Long-tailed jobs
//!   (e.g. `minhmm` next to `minzip`) therefore never serialize the
//!   corpus behind one slow worker.
//! * **Determinism.** Each job carries its submission index and the
//!   collector writes results into an index-addressed slot table, so
//!   [`BatchReport::results`] is in submission order regardless of the
//!   schedule. Dual execution itself is deterministic per job (for
//!   single-Lx-thread programs), so a batch run and a sequential
//!   [`Analysis::run`] loop produce identical verdicts, causality
//!   records, and table rows — `tests/batch_determinism.rs` locks this
//!   in under 1-worker and oversubscribed pools.
//!
//! [`Analysis::run`]: crate::Analysis::run

use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use ldx_dualex::{dual_execute, DualReport, DualSpec};
use ldx_ir::IrProgram;
use ldx_vos::VosConfig;
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many extra tasks a worker pulls from the injector per refill.
/// Small enough that stragglers remain stealable, large enough that the
/// injector lock is not hit once per task.
const REFILL_BATCH: usize = 2;

/// One unit of batch work: a dual execution of an instrumented program
/// against a world under a spec.
///
/// The program is shared by `Arc` — submitting the same compiled program
/// under many specs (source attribution, mutation batteries, corpora with
/// repeated sources) costs no copies.
#[derive(Debug, Clone)]
pub struct BatchJob {
    /// Display label carried through to [`JobResult::label`].
    pub label: String,
    /// The instrumented program to dual-execute.
    pub program: Arc<IrProgram>,
    /// The virtual world both executions run against.
    pub world: VosConfig,
    /// Sources, sinks, and execution limits.
    pub spec: DualSpec,
}

impl BatchJob {
    /// Creates a job.
    pub fn new(
        label: impl Into<String>,
        program: Arc<IrProgram>,
        world: VosConfig,
        spec: DualSpec,
    ) -> Self {
        BatchJob {
            label: label.into(),
            program,
            world,
            spec,
        }
    }
}

/// The outcome of one [`BatchJob`], with scheduler telemetry.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// The submitting job's label.
    pub label: String,
    /// The dual-execution causality report.
    pub report: DualReport,
    /// Wall-clock time of the dual execution itself.
    pub wall: Duration,
    /// Time the job spent queued before a worker picked it up.
    pub queue_latency: Duration,
    /// Which worker ran the job.
    pub worker: usize,
}

/// Aggregate result of a batch run.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Per-job results, **in submission order** (not completion order).
    pub results: Vec<JobResult>,
    /// Worker threads the pool actually used.
    pub workers: usize,
    /// Wall-clock time of the whole batch.
    pub wall: Duration,
    /// Per-worker busy time (time spent executing jobs, not stealing).
    pub worker_busy: Vec<Duration>,
}

impl BatchReport {
    /// Fraction of the pool's wall-clock capacity spent executing jobs,
    /// in `[0, 1]`. Low utilization on a long batch means the corpus had
    /// a serial tail; near 1.0 means the stealing kept everyone busy.
    pub fn utilization(&self) -> f64 {
        let capacity = self.wall.as_secs_f64() * self.workers as f64;
        if capacity <= 0.0 {
            return 0.0;
        }
        let busy: f64 = self.worker_busy.iter().map(Duration::as_secs_f64).sum();
        (busy / capacity).min(1.0)
    }

    /// Total syscalls the couple shared across all jobs.
    pub fn shared_total(&self) -> u64 {
        self.results.iter().map(|r| r.report.shared).sum()
    }

    /// Total syscall differences observed across all jobs.
    pub fn diffs_total(&self) -> u64 {
        self.results.iter().map(|r| r.report.syscall_diffs).sum()
    }

    /// How many jobs reported causality.
    pub fn leaks(&self) -> usize {
        self.results.iter().filter(|r| r.report.leaked()).count()
    }

    /// Sum of per-job execution wall times (the sequential-equivalent
    /// cost; compare against [`BatchReport::wall`] for the speedup).
    pub fn busy_total(&self) -> Duration {
        self.results.iter().map(|r| r.wall).sum()
    }
}

/// A bounded work-stealing pool for dual-execution jobs.
///
/// Construction picks the worker count; [`BatchEngine::run`] executes one
/// batch (workers are scoped to the call — the engine holds no threads
/// between runs, so it is cheap to create and freely shareable).
#[derive(Debug, Clone, Copy)]
pub struct BatchEngine {
    workers: usize,
}

impl BatchEngine {
    /// A pool of at most `requested` workers, capped at
    /// `available_parallelism() / 2` (each job runs a master *and* a
    /// slave thread) and floored at 1.
    pub fn new(requested: usize) -> Self {
        let avail = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        let cap = (avail / 2).max(1);
        BatchEngine {
            workers: requested.clamp(1, cap),
        }
    }

    /// The widest pool the sizing rule allows on this host.
    pub fn auto() -> Self {
        Self::new(usize::MAX)
    }

    /// A single-worker pool: same code path, sequential schedule. The
    /// determinism baseline.
    pub fn sequential() -> Self {
        BatchEngine { workers: 1 }
    }

    /// The number of workers [`BatchEngine::run`] will use.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs every job and returns the submission-ordered report.
    pub fn run(&self, jobs: Vec<BatchJob>) -> BatchReport {
        let started = Instant::now();
        let (results, worker_busy) = self.dispatch(jobs, |ctx, job| {
            let t0 = Instant::now();
            let span = ldx_obs::span(ldx_obs::cat::BATCH, job.label.clone())
                .arg("worker", ctx.worker as i64);
            let report = dual_execute(job.program, &job.world, &job.spec);
            drop(span);
            JobResult {
                label: job.label,
                report,
                wall: t0.elapsed(),
                queue_latency: ctx.queue_latency,
                worker: ctx.worker,
            }
        });
        BatchReport {
            results,
            workers: self.workers,
            wall: started.elapsed(),
            worker_busy,
        }
    }

    /// Applies `f` to every item on the pool and returns the results in
    /// input order. The general-purpose sibling of [`BatchEngine::run`]:
    /// bench binaries use it to parallelize whole table rows (which mix
    /// dual executions with taint baselines and native runs).
    pub fn map_ordered<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        self.dispatch(items, |_ctx, item| f(item)).0
    }

    /// The scheduler core: index-tagged tasks flow injector → local deque
    /// → sibling steals; results land in index-addressed slots.
    fn dispatch<T, R, F>(&self, items: Vec<T>, f: F) -> (Vec<R>, Vec<Duration>)
    where
        T: Send,
        R: Send,
        F: Fn(TaskCtx, T) -> R + Sync,
    {
        let n = items.len();
        ldx_obs::counter_add("batch.jobs", n as u64);
        ldx_obs::counter_max("batch.workers", self.workers as u64);
        let injector = Injector::new();
        for (index, item) in items.into_iter().enumerate() {
            injector.push(Task {
                index,
                enqueued: Instant::now(),
                item,
            });
        }
        let locals: Vec<Worker<Task<T>>> = (0..self.workers).map(|_| Worker::new_fifo()).collect();
        let stealers: Vec<Stealer<Task<T>>> = locals.iter().map(Worker::stealer).collect();
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();

        let worker_busy = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(self.workers);
            for (worker, local) in locals.iter().enumerate() {
                let injector = &injector;
                let stealers = &stealers;
                let slots = &slots;
                let f = &f;
                handles.push(scope.spawn(move || {
                    let mut busy = Duration::ZERO;
                    while let Some(task) = next_task(local, injector, stealers, worker) {
                        let queue_latency = task.enqueued.elapsed();
                        ldx_obs::histogram_record(
                            "batch.queue_latency_ns",
                            queue_latency.as_nanos() as u64,
                        );
                        let ctx = TaskCtx {
                            worker,
                            queue_latency,
                        };
                        let t0 = Instant::now();
                        let result = f(ctx, task.item);
                        busy += t0.elapsed();
                        *slots[task.index].lock() = Some(result);
                    }
                    busy
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("batch worker panicked"))
                .collect()
        });

        let results = slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("every submitted job completed"))
            .collect();
        (results, worker_busy)
    }
}

/// Per-task context handed to the dispatch closure.
struct TaskCtx {
    worker: usize,
    queue_latency: Duration,
}

/// An index-tagged task in flight.
struct Task<T> {
    index: usize,
    enqueued: Instant,
    item: T,
}

/// One worker's scheduling step: local deque first, then the injector
/// (grabbing a small batch for locality), then FIFO steals from siblings.
/// Returns `None` only when every queue is drained.
fn next_task<T>(
    local: &Worker<Task<T>>,
    injector: &Injector<Task<T>>,
    stealers: &[Stealer<Task<T>>],
    me: usize,
) -> Option<Task<T>> {
    if let Some(task) = local.pop() {
        return Some(task);
    }
    loop {
        match injector.steal() {
            Steal::Success(task) => {
                ldx_obs::counter_add("batch.refills", 1);
                for _ in 0..REFILL_BATCH {
                    match injector.steal() {
                        Steal::Success(extra) => local.push(extra),
                        _ => break,
                    }
                }
                return Some(task);
            }
            Steal::Retry => continue,
            Steal::Empty => {}
        }
        let mut retry = false;
        for (victim, stealer) in stealers.iter().enumerate() {
            if victim == me {
                continue;
            }
            match stealer.steal() {
                Steal::Success(task) => {
                    ldx_obs::counter_add("batch.steals", 1);
                    return Some(task);
                }
                Steal::Retry => retry = true,
                Steal::Empty => {}
            }
        }
        if !retry {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Analysis, SinkSpec, SourceSpec};
    use ldx_vos::PeerBehavior;

    fn leak_job(label: &str, payload: &str) -> BatchJob {
        let analysis = Analysis::for_source(&format!(
            r#"fn main() {{
                let s = read(open("/s", 0), 16);
                send(connect("out"), "{payload}:" + s);
            }}"#
        ))
        .unwrap()
        .world(
            VosConfig::new()
                .file("/s", "secret")
                .peer("out", PeerBehavior::Echo),
        )
        .source(SourceSpec::file("/s"))
        .sinks(SinkSpec::NetworkOut);
        BatchJob::new(
            label,
            analysis.program(),
            analysis.world_ref().clone(),
            analysis.spec().clone(),
        )
    }

    #[test]
    fn pool_sizing_respects_the_two_threads_per_job_rule() {
        let avail = std::thread::available_parallelism().map_or(1, |n| n.get());
        let cap = (avail / 2).max(1);
        assert_eq!(BatchEngine::new(usize::MAX).workers(), cap);
        assert_eq!(BatchEngine::auto().workers(), cap);
        assert_eq!(BatchEngine::new(0).workers(), 1);
        assert_eq!(BatchEngine::new(1).workers(), 1);
        assert_eq!(BatchEngine::sequential().workers(), 1);
    }

    #[test]
    fn results_come_back_in_submission_order() {
        let jobs: Vec<BatchJob> = (0..8).map(|i| leak_job(&format!("job{i}"), "p")).collect();
        let report = BatchEngine::auto().run(jobs);
        assert_eq!(report.results.len(), 8);
        for (i, r) in report.results.iter().enumerate() {
            assert_eq!(r.label, format!("job{i}"));
            assert!(r.report.leaked());
        }
        assert_eq!(report.leaks(), 8);
        assert!(report.shared_total() > 0);
    }

    #[test]
    fn empty_batch_is_fine() {
        let report = BatchEngine::auto().run(Vec::new());
        assert!(report.results.is_empty());
        assert_eq!(report.leaks(), 0);
        assert_eq!(report.utilization(), 0.0);
    }

    #[test]
    fn map_ordered_preserves_input_order_under_oversubscription() {
        // More conceptual workers than items and vice versa.
        let items: Vec<usize> = (0..50).collect();
        let out = BatchEngine::new(64).map_ordered(items, |i| i * 2);
        assert_eq!(out, (0..50).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn telemetry_is_populated() {
        let jobs = vec![leak_job("a", "x"), leak_job("b", "y")];
        let report = BatchEngine::sequential().run(jobs);
        assert_eq!(report.workers, 1);
        assert_eq!(report.worker_busy.len(), 1);
        assert!(report.wall >= report.results[0].wall);
        assert!(report.busy_total() >= report.results[0].wall);
        for r in &report.results {
            assert_eq!(r.worker, 0);
        }
        let u = report.utilization();
        assert!((0.0..=1.0).contains(&u), "{u}");
    }
}
