//! The compile/instrument cache: at most one compile per distinct source.
//!
//! Batch runs over a corpus repeatedly need the same program in up to two
//! forms — instrumented (for LDX dual execution) and plain (for native
//! baselines and ablations). [`InstrumentCache`] keys both by a stable
//! FNV-1a fingerprint of the source text ([`ldx_instrument::source_fingerprint`])
//! and hands out `Arc`s, so a corpus sweep compiles each distinct source
//! exactly once no matter how many jobs, tables, or baseline variants
//! reference it. Hit/compile counters make that guarantee testable.

use ldx_instrument::{source_fingerprint, InstrumentedProgram};
use ldx_ir::IrProgram;
use ldx_lang::LangError;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A cached instrumented compile: the pass output (for reports/FCNT
/// queries) plus the program as a shareable `Arc<IrProgram>` (what the
/// execution engines take).
#[derive(Debug, Clone)]
pub struct CachedInstrumented {
    /// The instrumentation pass output.
    pub instrumented: Arc<InstrumentedProgram>,
    /// The instrumented program, ready for `dual_execute`/`Analysis`.
    pub program: Arc<IrProgram>,
}

/// A concurrent source-keyed cache over compile (+ instrument).
///
/// Thread-safe; workers of a [`BatchEngine`](crate::BatchEngine) may share
/// one cache. Compilation happens under the shard lock, so two workers
/// racing on the same source still produce **exactly one** compile — the
/// loser waits and gets the cached `Arc`.
#[derive(Debug, Default)]
pub struct InstrumentCache {
    instrumented: Mutex<HashMap<u64, CachedInstrumented>>,
    plain: Mutex<HashMap<u64, Arc<IrProgram>>>,
    hits: AtomicU64,
    compiles: AtomicU64,
}

impl InstrumentCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Compile + instrument `source`, or return the cached result.
    ///
    /// # Errors
    ///
    /// Returns the frontend [`LangError`] on invalid source (errors are
    /// not cached; a retried bad source recompiles).
    pub fn instrumented(&self, source: &str) -> Result<CachedInstrumented, LangError> {
        let key = source_fingerprint(source);
        let mut map = self.instrumented.lock();
        if let Some(hit) = map.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            ldx_obs::counter_add("cache.hits", 1);
            return Ok(hit.clone());
        }
        self.compiles.fetch_add(1, Ordering::Relaxed);
        ldx_obs::counter_add("cache.compiles", 1);
        let _s = ldx_obs::span(ldx_obs::cat::COMPILE, "compile+instrument");
        let resolved = ldx_lang::compile(source)?;
        let instrumented = ldx_instrument::instrument(&ldx_ir::lower(&resolved));
        let entry = CachedInstrumented {
            program: Arc::new(instrumented.program().clone()),
            instrumented: Arc::new(instrumented),
        };
        map.insert(key, entry.clone());
        Ok(entry)
    }

    /// The instrumented program alone (the common batch-job ingredient).
    ///
    /// # Errors
    ///
    /// Returns the frontend [`LangError`] on invalid source.
    pub fn program(&self, source: &str) -> Result<Arc<IrProgram>, LangError> {
        Ok(self.instrumented(source)?.program)
    }

    /// Compile `source` **without** instrumentation (native baselines,
    /// ablations), or return the cached result. Counted separately from
    /// the instrumented form: the two are distinct compiles.
    ///
    /// # Errors
    ///
    /// Returns the frontend [`LangError`] on invalid source.
    pub fn uninstrumented(&self, source: &str) -> Result<Arc<IrProgram>, LangError> {
        let key = source_fingerprint(source);
        let mut map = self.plain.lock();
        if let Some(hit) = map.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            ldx_obs::counter_add("cache.hits", 1);
            return Ok(Arc::clone(hit));
        }
        self.compiles.fetch_add(1, Ordering::Relaxed);
        ldx_obs::counter_add("cache.compiles", 1);
        let _s = ldx_obs::span(ldx_obs::cat::COMPILE, "compile-plain");
        let resolved = ldx_lang::compile(source)?;
        let program = Arc::new(ldx_ir::lower(&resolved));
        map.insert(key, Arc::clone(&program));
        Ok(program)
    }

    /// Lookups served from cache so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Compiles actually performed (the "exactly one compile per distinct
    /// source" assertion counts these).
    pub fn compiles(&self) -> u64 {
        self.compiles.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC_A: &str = r#"fn main() { write(1, "a"); }"#;
    const SRC_B: &str = r#"fn main() { write(1, "b"); }"#;

    #[test]
    fn one_compile_per_distinct_source() {
        let cache = InstrumentCache::new();
        for _ in 0..5 {
            cache.instrumented(SRC_A).unwrap();
            cache.instrumented(SRC_B).unwrap();
        }
        assert_eq!(cache.compiles(), 2);
        assert_eq!(cache.hits(), 8);
    }

    #[test]
    fn hits_share_the_same_program() {
        let cache = InstrumentCache::new();
        let first = cache.program(SRC_A).unwrap();
        let second = cache.program(SRC_A).unwrap();
        assert!(Arc::ptr_eq(&first, &second));
    }

    #[test]
    fn instrumented_and_plain_forms_are_separate_compiles() {
        // Branchy source: the pass adds compensation, so the two forms
        // must actually differ.
        let src = r#"fn main() {
            if (getpid() > 0) { write(1, "a"); write(1, "b"); }
            close(1);
        }"#;
        let cache = InstrumentCache::new();
        let inst = cache.program(src).unwrap();
        let plain = cache.uninstrumented(src).unwrap();
        assert_eq!(cache.compiles(), 2);
        assert!(!Arc::ptr_eq(&inst, &plain));
        assert_ne!(*inst, *plain, "counters were added");
    }

    #[test]
    fn errors_are_propagated_not_cached() {
        let cache = InstrumentCache::new();
        assert!(cache.instrumented("fn main( {").is_err());
        assert!(cache.instrumented("fn main( {").is_err());
        assert_eq!(cache.compiles(), 2, "bad sources are not cached");
    }

    #[test]
    fn concurrent_lookups_still_compile_once() {
        let cache = Arc::new(InstrumentCache::new());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    for _ in 0..4 {
                        cache.instrumented(SRC_A).unwrap();
                    }
                });
            }
        });
        assert_eq!(cache.compiles(), 1);
        assert_eq!(cache.hits(), 31);
    }
}
