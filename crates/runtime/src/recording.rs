//! Event-recording hook wrapper (testing and trace tooling).

use crate::hooks::{SysOutcome, SyscallCtx, SyscallHooks};
use crate::threads::{StopSignal, ThreadKey};
use crate::trap::Trap;
use crate::value::Value;
use crate::ProgressKey;
use ldx_ir::{FuncId, SiteId};
use ldx_lang::Syscall;
use parking_lot::Mutex;
use std::sync::Arc;

/// One observed syscall event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyscallEvent {
    /// Issuing thread.
    pub thread: ThreadKey,
    /// Progress key at the syscall.
    pub key: ProgressKey,
    /// Containing function.
    pub func: FuncId,
    /// Call site.
    pub site: SiteId,
    /// Which syscall.
    pub sys: Syscall,
    /// The argument values.
    pub args: Vec<Value>,
}

/// Wraps any [`SyscallHooks`], recording every syscall event before
/// delegating. Used by tests (to assert on progress keys) and by the
/// alignment-trace example that reproduces paper Figures 3 and 5.
pub struct RecordingHooks<H: SyscallHooks> {
    inner: H,
    events: Arc<Mutex<Vec<SyscallEvent>>>,
}

impl<H: SyscallHooks> RecordingHooks<H> {
    /// Wraps `inner`.
    pub fn new(inner: H) -> Self {
        RecordingHooks {
            inner,
            events: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// A shared handle to the recorded events (usable after the run).
    pub fn events_handle(&self) -> Arc<Mutex<Vec<SyscallEvent>>> {
        Arc::clone(&self.events)
    }

    /// The wrapped hooks.
    pub fn inner(&self) -> &H {
        &self.inner
    }
}

impl<H: SyscallHooks> SyscallHooks for RecordingHooks<H> {
    fn syscall(&self, ctx: &SyscallCtx, args: &[Value]) -> Result<SysOutcome, Trap> {
        self.events.lock().push(SyscallEvent {
            thread: ctx.thread.clone(),
            key: ctx.key.clone(),
            func: ctx.func,
            site: ctx.site,
            sys: ctx.sys,
            args: args.to_vec(),
        });
        self.inner.syscall(ctx, args)
    }

    fn loop_barrier(
        &self,
        thread: &ThreadKey,
        key: &ProgressKey,
        stop: &StopSignal,
    ) -> Result<(), Trap> {
        self.inner.loop_barrier(thread, key, stop)
    }

    fn thread_finished(&self, thread: &ThreadKey) {
        self.inner.thread_finished(thread);
    }

    fn observes_steps(&self) -> bool {
        self.inner.observes_steps()
    }

    fn on_step(&self, thread: &ThreadKey, func: FuncId, block: u32, idx: usize) {
        self.inner.on_step(thread, func, block, idx);
    }
}
