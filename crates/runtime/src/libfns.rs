//! Pure library-function implementations.

use crate::trap::Trap;
use crate::value::Value;
use ldx_lang::LibFn;

/// Evaluates a library function (arity already validated by the resolver).
///
/// # Errors
///
/// Returns [`Trap`] on type misuse.
pub fn eval_lib(lib: LibFn, args: &[Value]) -> Result<Value, Trap> {
    match lib {
        LibFn::Len => Ok(Value::Int(match &args[0] {
            Value::Str(s) => s.chars().count() as i64,
            Value::Arr(a) => a.len() as i64,
            other => {
                return Err(Trap::TypeError {
                    expected: "string or array",
                    found: other.type_name(),
                })
            }
        })),
        LibFn::Str => Ok(Value::str(args[0].stringify())),
        LibFn::Int => Ok(Value::Int(match &args[0] {
            Value::Int(v) => *v,
            Value::Str(s) => parse_int_prefix(s),
            _ => 0,
        })),
        LibFn::Substr => {
            let s = args[0].as_str()?;
            let start = args[1].as_int()?.max(0) as usize;
            let n = args[2].as_int()?.max(0) as usize;
            Ok(Value::str(
                s.chars().skip(start).take(n).collect::<String>(),
            ))
        }
        LibFn::Find => {
            let hay = args[0].as_str()?;
            let needle = args[1].as_str()?;
            Ok(Value::Int(match hay.find(needle) {
                Some(byte_idx) => hay[..byte_idx].chars().count() as i64,
                None => -1,
            }))
        }
        LibFn::Ord => {
            let s = args[0].as_str()?;
            let i = args[1].as_int()?;
            let c = usize::try_from(i).ok().and_then(|i| s.chars().nth(i));
            Ok(Value::Int(c.map(|c| c as i64).unwrap_or(0)))
        }
        LibFn::Chr => {
            let i = args[0].as_int()?;
            let c = u32::try_from(i)
                .ok()
                .and_then(char::from_u32)
                .unwrap_or('?');
            Ok(Value::str(&*c.encode_utf8(&mut [0u8; 4])))
        }
        LibFn::Min => Ok(Value::Int(args[0].as_int()?.min(args[1].as_int()?))),
        LibFn::Max => Ok(Value::Int(args[0].as_int()?.max(args[1].as_int()?))),
        LibFn::Abs => Ok(Value::Int(args[0].as_int()?.wrapping_abs())),
        LibFn::ArrayNew => {
            let n = args[0].as_int()?.max(0) as usize;
            if n > 1 << 24 {
                return Err(Trap::TypeError {
                    expected: "array size under 2^24",
                    found: "larger allocation",
                });
            }
            Ok(Value::arr(vec![args[1].clone(); n]))
        }
        LibFn::Push => match &args[0] {
            Value::Arr(a) => {
                let mut out = a.as_ref().clone();
                out.push(args[1].clone());
                Ok(Value::arr(out))
            }
            other => Err(Trap::TypeError {
                expected: "array",
                found: other.type_name(),
            }),
        },
        LibFn::Set => match &args[0] {
            Value::Arr(a) => {
                let i = args[1].as_int()?;
                let idx = usize::try_from(i).map_err(|_| Trap::IndexOutOfBounds {
                    index: i,
                    len: a.len(),
                })?;
                if idx >= a.len() {
                    return Err(Trap::IndexOutOfBounds {
                        index: i,
                        len: a.len(),
                    });
                }
                let mut out = a.as_ref().clone();
                out[idx] = args[2].clone();
                Ok(Value::arr(out))
            }
            other => Err(Trap::TypeError {
                expected: "array",
                found: other.type_name(),
            }),
        },
        LibFn::Sort => match &args[0] {
            Value::Arr(a) => {
                let mut out = a.as_ref().clone();
                if out.iter().all(|v| matches!(v, Value::Int(_))) {
                    out.sort_by_key(|v| match v {
                        Value::Int(i) => *i,
                        _ => unreachable!(),
                    });
                } else {
                    out.sort_by_key(Value::stringify);
                }
                Ok(Value::arr(out))
            }
            other => Err(Trap::TypeError {
                expected: "array",
                found: other.type_name(),
            }),
        },
        LibFn::Hash => {
            // FNV-1a over the canonical string form.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in args[0].stringify().bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Ok(Value::Int((h >> 1) as i64))
        }
        LibFn::Repeat => {
            let s = args[0].as_str()?;
            let n = args[1].as_int()?.max(0) as usize;
            if s.len().saturating_mul(n) > 1 << 26 {
                return Err(Trap::TypeError {
                    expected: "repetition under 64MiB",
                    found: "larger allocation",
                });
            }
            Ok(Value::str(s.repeat(n)))
        }
        LibFn::Split => {
            let s = args[0].as_str()?;
            let sep = args[1].as_str()?;
            let parts: Vec<Value> = if sep.is_empty() {
                s.chars()
                    .map(|c| Value::str(&*c.encode_utf8(&mut [0u8; 4])))
                    .collect()
            } else {
                s.split(sep).map(Value::str).collect()
            };
            Ok(Value::arr(parts))
        }
        LibFn::StrJoin => match &args[0] {
            Value::Arr(a) => {
                let sep = args[1].as_str()?;
                let parts: Vec<String> = a.iter().map(Value::stringify).collect();
                Ok(Value::str(parts.join(sep)))
            }
            other => Err(Trap::TypeError {
                expected: "array",
                found: other.type_name(),
            }),
        },
        LibFn::Trim => Ok(Value::str(args[0].as_str()?.trim())),
        LibFn::Upper => Ok(Value::str(args[0].as_str()?.to_ascii_uppercase())),
        LibFn::Lower => Ok(Value::str(args[0].as_str()?.to_ascii_lowercase())),
    }
}

/// Parses an optional-sign decimal prefix (after leading whitespace);
/// returns 0 when no digits are found, saturating on overflow.
fn parse_int_prefix(s: &str) -> i64 {
    let t = s.trim_start();
    let (neg, digits) = match t.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, t.strip_prefix('+').unwrap_or(t)),
    };
    let mut val: i64 = 0;
    let mut any = false;
    for c in digits.chars() {
        let Some(d) = c.to_digit(10) else { break };
        any = true;
        val = val.saturating_mul(10).saturating_add(i64::from(d));
    }
    if !any {
        0
    } else if neg {
        -val
    } else {
        val
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int(v: i64) -> Value {
        Value::Int(v)
    }
    fn s(v: &str) -> Value {
        Value::Str(v.into())
    }
    fn arr(v: Vec<Value>) -> Value {
        Value::arr(v)
    }

    #[test]
    fn len_str_int() {
        assert_eq!(eval_lib(LibFn::Len, &[s("héllo")]).unwrap(), int(5));
        assert_eq!(eval_lib(LibFn::Len, &[arr(vec![int(1)])]).unwrap(), int(1));
        assert!(eval_lib(LibFn::Len, &[int(3)]).is_err());
        assert_eq!(eval_lib(LibFn::Str, &[int(-7)]).unwrap(), s("-7"));
        assert_eq!(eval_lib(LibFn::Int, &[s("  42abc")]).unwrap(), int(42));
        assert_eq!(eval_lib(LibFn::Int, &[s("-13")]).unwrap(), int(-13));
        assert_eq!(eval_lib(LibFn::Int, &[s("abc")]).unwrap(), int(0));
        assert_eq!(eval_lib(LibFn::Int, &[int(5)]).unwrap(), int(5));
    }

    #[test]
    fn substr_clamps() {
        assert_eq!(
            eval_lib(LibFn::Substr, &[s("hello"), int(1), int(3)]).unwrap(),
            s("ell")
        );
        assert_eq!(
            eval_lib(LibFn::Substr, &[s("hello"), int(4), int(99)]).unwrap(),
            s("o")
        );
        assert_eq!(
            eval_lib(LibFn::Substr, &[s("hello"), int(9), int(2)]).unwrap(),
            s("")
        );
        assert_eq!(
            eval_lib(LibFn::Substr, &[s("hello"), int(-3), int(2)]).unwrap(),
            s("he")
        );
    }

    #[test]
    fn find_ord_chr() {
        assert_eq!(
            eval_lib(LibFn::Find, &[s("banana"), s("na")]).unwrap(),
            int(2)
        );
        assert_eq!(
            eval_lib(LibFn::Find, &[s("banana"), s("xyz")]).unwrap(),
            int(-1)
        );
        assert_eq!(eval_lib(LibFn::Ord, &[s("A"), int(0)]).unwrap(), int(65));
        assert_eq!(eval_lib(LibFn::Ord, &[s("A"), int(9)]).unwrap(), int(0));
        assert_eq!(eval_lib(LibFn::Chr, &[int(66)]).unwrap(), s("B"));
        assert_eq!(eval_lib(LibFn::Chr, &[int(-1)]).unwrap(), s("?"));
    }

    #[test]
    fn min_max_abs() {
        assert_eq!(eval_lib(LibFn::Min, &[int(3), int(5)]).unwrap(), int(3));
        assert_eq!(eval_lib(LibFn::Max, &[int(3), int(5)]).unwrap(), int(5));
        assert_eq!(eval_lib(LibFn::Abs, &[int(-9)]).unwrap(), int(9));
    }

    #[test]
    fn array_ops() {
        let a = eval_lib(LibFn::ArrayNew, &[int(3), int(0)]).unwrap();
        assert_eq!(a, arr(vec![int(0), int(0), int(0)]));
        let b = eval_lib(LibFn::Push, &[a.clone(), int(7)]).unwrap();
        assert_eq!(
            eval_lib(LibFn::Len, std::slice::from_ref(&b)).unwrap(),
            int(4)
        );
        let c = eval_lib(LibFn::Set, &[b, int(0), s("x")]).unwrap();
        let Value::Arr(v) = &c else { panic!() };
        assert_eq!(v[0], s("x"));
        assert!(eval_lib(LibFn::Set, &[c, int(99), int(0)]).is_err());
    }

    #[test]
    fn sort_numeric_and_lexicographic() {
        let nums = arr(vec![int(3), int(-1), int(2)]);
        assert_eq!(
            eval_lib(LibFn::Sort, &[nums]).unwrap(),
            arr(vec![int(-1), int(2), int(3)])
        );
        let strs = arr(vec![s("b"), s("a")]);
        assert_eq!(
            eval_lib(LibFn::Sort, &[strs]).unwrap(),
            arr(vec![s("a"), s("b")])
        );
    }

    #[test]
    fn hash_is_deterministic_and_spreads() {
        let h1 = eval_lib(LibFn::Hash, &[s("abc")]).unwrap();
        let h2 = eval_lib(LibFn::Hash, &[s("abc")]).unwrap();
        let h3 = eval_lib(LibFn::Hash, &[s("abd")]).unwrap();
        assert_eq!(h1, h2);
        assert_ne!(h1, h3);
    }

    #[test]
    fn repeat_split_join_trim_case() {
        assert_eq!(
            eval_lib(LibFn::Repeat, &[s("ab"), int(3)]).unwrap(),
            s("ababab")
        );
        assert_eq!(
            eval_lib(LibFn::Split, &[s("a,b,,c"), s(",")]).unwrap(),
            arr(vec![s("a"), s("b"), s(""), s("c")])
        );
        assert_eq!(
            eval_lib(LibFn::Split, &[s("ab"), s("")]).unwrap(),
            arr(vec![s("a"), s("b")])
        );
        assert_eq!(
            eval_lib(LibFn::StrJoin, &[arr(vec![s("x"), int(2)]), s("-")]).unwrap(),
            s("x-2")
        );
        assert_eq!(eval_lib(LibFn::Trim, &[s("  hi\n")]).unwrap(), s("hi"));
        assert_eq!(eval_lib(LibFn::Upper, &[s("aBc")]).unwrap(), s("ABC"));
        assert_eq!(eval_lib(LibFn::Lower, &[s("aBc")]).unwrap(), s("abc"));
    }

    #[test]
    fn allocation_guards() {
        assert!(eval_lib(LibFn::ArrayNew, &[int(1 << 30), int(0)]).is_err());
        assert!(eval_lib(LibFn::Repeat, &[s("xxxxxxxx"), int(1 << 30)]).is_err());
    }

    #[test]
    fn int_parse_saturates() {
        assert_eq!(
            eval_lib(LibFn::Int, &[s("99999999999999999999999")]).unwrap(),
            int(i64::MAX)
        );
    }
}
