//! The syscall-hook interface: where execution engines plug in.
//!
//! The interpreter routes every syscall through a [`SyscallHooks`]
//! implementation. [`NativeHooks`] dispatches straight to the virtual OS —
//! that is a plain, single execution (the paper's "native" baseline). The
//! dual-execution engine in `ldx-dualex` provides master/slave hooks
//! implementing the coupling protocol (paper Algorithm 2) on top of the
//! same interface, and the taint/TightLip/DualEx baselines do likewise.

use crate::threads::{LockTable, StopSignal, ThreadKey};
use crate::trap::Trap;
use crate::value::Value;
use crate::ProgressKey;
use ldx_ir::{FuncId, SiteId};
use ldx_lang::Syscall;
use ldx_vos::{SysArg, SysRet, Vos};
use std::sync::Arc;

/// Context describing one syscall event.
#[derive(Debug, Clone)]
pub struct SyscallCtx {
    /// The issuing Lx thread.
    pub thread: ThreadKey,
    /// The thread's progress key at the syscall.
    pub key: ProgressKey,
    /// The function containing the call site.
    pub func: FuncId,
    /// The call site ("PC" for alignment).
    pub site: SiteId,
    /// Which syscall.
    pub sys: Syscall,
    /// The execution's stop signal (so blocking hooks can bail out).
    pub stop: StopSignal,
}

/// What the hooks decided.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SysOutcome {
    /// The syscall produced this value (hooks executed or shared it).
    Value(Value),
    /// The interpreter should perform the operation locally — used for the
    /// control-flow syscalls it owns: `spawn`, `join`, `exit`, `setjmp`,
    /// `longjmp`.
    DoLocal,
    /// Terminate the execution with this exit code.
    Exit(i64),
}

/// The engine interface: every execution model implements this.
pub trait SyscallHooks: Send + Sync {
    /// Handles one syscall; see [`SysOutcome`].
    ///
    /// # Errors
    ///
    /// May return any [`Trap`] (e.g. [`Trap::Aborted`] when the engine
    /// stops this execution).
    fn syscall(&self, ctx: &SyscallCtx, args: &[Value]) -> Result<SysOutcome, Trap>;

    /// Called at each instrumented-loop backedge with the progress key at
    /// the barrier point, *before* the iteration epoch increments. Engines
    /// use it to synchronize iterations (paper §5); the default is a no-op.
    ///
    /// # Errors
    ///
    /// May return [`Trap::Aborted`] when the engine tears down.
    fn loop_barrier(
        &self,
        _thread: &ThreadKey,
        _key: &ProgressKey,
        _stop: &StopSignal,
    ) -> Result<(), Trap> {
        Ok(())
    }

    /// Called when an Lx thread finishes (normally or not); the engine
    /// publishes terminal progress so its peer never waits on this thread.
    fn thread_finished(&self, _thread: &ThreadKey) {}

    /// Whether the engine wants per-instruction callbacks. Only engines
    /// that model instruction-level monitoring (the execution-indexing
    /// DualEx baseline) return `true`; the interpreter skips the callback
    /// entirely otherwise.
    fn observes_steps(&self) -> bool {
        false
    }

    /// Per-instruction callback (only invoked when [`observes_steps`]
    /// returns `true`).
    ///
    /// [`observes_steps`]: SyscallHooks::observes_steps
    fn on_step(&self, _thread: &ThreadKey, _func: FuncId, _block: u32, _idx: usize) {}
}

/// Converts interpreter values to virtual OS arguments.
///
/// # Errors
///
/// Returns [`Trap::TypeError`] for arrays/functions (not valid syscall
/// arguments).
pub fn to_sys_args(args: &[Value]) -> Result<Vec<SysArg>, Trap> {
    args.iter()
        .map(|v| match v {
            Value::Int(i) => Ok(SysArg::Int(*i)),
            Value::Str(s) => Ok(SysArg::Str(s.to_string())),
            other => Err(Trap::TypeError {
                expected: "integer or string syscall argument",
                found: other.type_name(),
            }),
        })
        .collect()
}

/// Converts a virtual OS result back to a value.
pub fn from_sys_ret(ret: SysRet) -> Value {
    match ret {
        SysRet::Int(v) => Value::Int(v),
        SysRet::Str(s) => Value::str(s),
    }
}

/// Plain single-execution hooks: syscalls go straight to one virtual OS.
#[derive(Debug)]
pub struct NativeHooks {
    vos: Arc<Vos>,
    locks: LockTable,
}

impl NativeHooks {
    /// Creates hooks over a virtual world.
    pub fn new(vos: Arc<Vos>) -> Self {
        NativeHooks {
            vos,
            locks: LockTable::new(),
        }
    }

    /// The underlying world (for output inspection).
    pub fn vos(&self) -> &Arc<Vos> {
        &self.vos
    }
}

impl SyscallHooks for NativeHooks {
    fn syscall(&self, ctx: &SyscallCtx, args: &[Value]) -> Result<SysOutcome, Trap> {
        match ctx.sys {
            Syscall::Spawn | Syscall::Join | Syscall::Exit | Syscall::Setjmp | Syscall::Longjmp => {
                Ok(SysOutcome::DoLocal)
            }
            Syscall::Lock => {
                let id = args[0].as_int()?;
                self.locks.lock(id, &ctx.thread, &ctx.stop);
                Ok(SysOutcome::Value(Value::Int(0)))
            }
            Syscall::Unlock => {
                let id = args[0].as_int()?;
                self.locks.unlock(id);
                Ok(SysOutcome::Value(Value::Int(0)))
            }
            sys => {
                let sys_args = to_sys_args(args)?;
                let ret = self.vos.syscall(sys, &sys_args)?;
                Ok(SysOutcome::Value(from_sys_ret(ret)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldx_vos::VosConfig;

    fn ctx(sys: Syscall) -> SyscallCtx {
        SyscallCtx {
            thread: ThreadKey::root(),
            key: ProgressKey::start(),
            func: FuncId(0),
            site: SiteId(0),
            sys,
            stop: StopSignal::new(),
        }
    }

    #[test]
    fn native_hooks_dispatch_to_vos() {
        let vos = Arc::new(Vos::new(&VosConfig::new().file("/f", "abc")));
        let hooks = NativeHooks::new(vos);
        let out = hooks
            .syscall(
                &ctx(Syscall::Open),
                &[Value::Str("/f".into()), Value::Int(0)],
            )
            .unwrap();
        let SysOutcome::Value(Value::Int(fd)) = out else {
            panic!()
        };
        assert!(fd >= 3);
    }

    #[test]
    fn control_syscalls_are_local() {
        let vos = Arc::new(Vos::new(&VosConfig::new()));
        let hooks = NativeHooks::new(vos);
        for sys in [Syscall::Spawn, Syscall::Join, Syscall::Exit] {
            assert_eq!(hooks.syscall(&ctx(sys), &[]).unwrap(), SysOutcome::DoLocal);
        }
    }

    #[test]
    fn lock_unlock_return_zero() {
        let vos = Arc::new(Vos::new(&VosConfig::new()));
        let hooks = NativeHooks::new(vos);
        assert_eq!(
            hooks
                .syscall(&ctx(Syscall::Lock), &[Value::Int(1)])
                .unwrap(),
            SysOutcome::Value(Value::Int(0))
        );
        assert_eq!(
            hooks
                .syscall(&ctx(Syscall::Unlock), &[Value::Int(1)])
                .unwrap(),
            SysOutcome::Value(Value::Int(0))
        );
    }

    #[test]
    fn bad_args_convert_to_traps() {
        assert!(to_sys_args(&[Value::arr(vec![])]).is_err());
        assert_eq!(
            to_sys_args(&[Value::Int(1), Value::Str("x".into())]).unwrap(),
            vec![SysArg::Int(1), SysArg::Str("x".into())]
        );
    }
}
