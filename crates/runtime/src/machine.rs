//! The Lx interpreter: an explicit-activation-stack machine maintaining
//! the LDX progress counter at runtime.

use crate::globals::{const_to_value, Globals};
use crate::hooks::{SysOutcome, SyscallCtx, SyscallHooks};
use crate::libfns::eval_lib;
use crate::progress::{FrameKey, LoopUid, ProgressKey};
use crate::stats::RunStats;
use crate::threads::{StopSignal, ThreadKey, ThreadRegistry};
use crate::trap::Trap;
use crate::value::{eval_binary, eval_index, eval_unary, store_index, Value};
use ldx_ir::{BlockId, FuncId, Instr, IrProgram, LocalId, SiteId, Terminator};
use ldx_lang::Syscall;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Resource limits for one execution.
#[derive(Debug, Clone, Copy)]
pub struct ExecConfig {
    /// Per-thread interpreter step budget (runaway-loop guard).
    pub max_steps: u64,
    /// Maximum activation (call) depth per thread.
    pub max_activations: usize,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            max_steps: 200_000_000,
            max_activations: 4096,
        }
    }
}

/// The result of a completed execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOutcome {
    /// The exit code (from `exit(code)`, else 0).
    pub exit_code: i64,
    /// `main`'s return value (Int 0 when the program called `exit`).
    pub result: Value,
    /// Merged dynamic statistics across all threads.
    pub stats: RunStats,
}

/// Shared per-execution environment.
struct Env {
    program: Arc<IrProgram>,
    hooks: Arc<dyn SyscallHooks>,
    globals: Arc<Globals>,
    registry: Arc<ThreadRegistry>,
    stop: StopSignal,
    config: ExecConfig,
    stats: Mutex<RunStats>,
    gen_counter: AtomicU64,
}

/// Runs an Lx program to completion under the given hooks.
///
/// This is the single entry point every execution model uses: native runs
/// pass [`crate::NativeHooks`]; the dual-execution engine passes its
/// master/slave hooks; baselines pass theirs.
///
/// # Errors
///
/// Returns the first [`Trap`] raised by any thread.
pub fn run_program(
    program: Arc<IrProgram>,
    hooks: Arc<dyn SyscallHooks>,
    config: ExecConfig,
) -> Result<RunOutcome, Trap> {
    run_program_with_stop(program, hooks, config, StopSignal::new())
}

/// Like [`run_program`], but with a caller-provided stop signal so an
/// engine can abort the execution from outside.
///
/// # Errors
///
/// See [`run_program`].
pub fn run_program_with_stop(
    program: Arc<IrProgram>,
    hooks: Arc<dyn SyscallHooks>,
    config: ExecConfig,
    stop: StopSignal,
) -> Result<RunOutcome, Trap> {
    let globals = Arc::new(Globals::new(&program));
    let env = Arc::new(Env {
        program,
        hooks,
        globals,
        registry: Arc::new(ThreadRegistry::new()),
        stop,
        config,
        stats: Mutex::new(RunStats::default()),
        gen_counter: AtomicU64::new(0),
    });

    let root = ThreadKey::root();
    let main = env.program.main();
    let mut machine = Machine::new(Arc::clone(&env), root.clone());
    let result = machine.run_function(main, Vec::new());
    machine.finish();
    env.hooks.thread_finished(&root);

    // A trap in the main thread must stop the others before we join them.
    if let Err(trap) = &result {
        env.stop.request_trap(trap.clone());
    }
    if let Some(trap) = env.registry.drain() {
        env.stop.request_trap(trap);
    }

    if let Some(trap) = env.stop.trap() {
        return Err(trap);
    }
    let value = match result {
        Ok(MachineEnd::Finished(v)) => v,
        Ok(MachineEnd::Stopped) => Value::Int(0),
        Err(_) => unreachable!("trap handled above"),
    };
    let stats = env.stats.lock().clone();
    Ok(RunOutcome {
        exit_code: env.stop.exit_code(),
        result: value,
        stats,
    })
}

/// How a machine's run ended.
enum MachineEnd {
    /// The entry function returned this value.
    Finished(Value),
    /// The cooperative stop signal fired (exit/abort).
    Stopped,
}

enum Flow {
    Continue,
    Ended(MachineEnd),
}

struct Activation {
    func: FuncId,
    block: BlockId,
    idx: usize,
    locals: Vec<Value>,
    /// Destination slot *in the caller's frame* for the return value.
    ret_dst: LocalId,
    /// Whether this activation opened a fresh counter frame.
    fresh: bool,
    /// Instrumented loops currently active in this activation.
    loops: Vec<(LoopUid, u64)>,
    /// Unique instance id (setjmp validity check).
    gen: u64,
}

struct JmpBuf {
    depth: usize,
    gen: u64,
    block: BlockId,
    idx: usize,
    dst: LocalId,
    counter_frames: Vec<u64>,
    loops_snapshot: Vec<Vec<(LoopUid, u64)>>,
}

struct Machine {
    env: Arc<Env>,
    thread: ThreadKey,
    counter_frames: Vec<u64>,
    activations: Vec<Activation>,
    jmpbufs: Vec<JmpBuf>,
    stats: RunStats,
    spawn_count: u32,
}

impl Machine {
    fn new(env: Arc<Env>, thread: ThreadKey) -> Self {
        Machine {
            env,
            thread,
            counter_frames: vec![0],
            activations: Vec::new(),
            jmpbufs: Vec::new(),
            stats: RunStats::default(),
            spawn_count: 0,
        }
    }

    fn finish(&mut self) {
        self.env.stats.lock().merge(&self.stats);
    }

    fn run_function(&mut self, func: FuncId, args: Vec<Value>) -> Result<MachineEnd, Trap> {
        self.push_activation(func, args, LocalId(0), false)?;
        self.execute()
    }

    fn local(&self, id: LocalId) -> &Value {
        &self.activations.last().expect("active frame").locals[id.index()]
    }

    fn set_local(&mut self, id: LocalId, v: Value) {
        self.activations.last_mut().expect("active frame").locals[id.index()] = v;
    }

    fn push_activation(
        &mut self,
        func: FuncId,
        args: Vec<Value>,
        ret_dst: LocalId,
        fresh: bool,
    ) -> Result<(), Trap> {
        if self.activations.len() >= self.env.config.max_activations {
            return Err(Trap::StackOverflow {
                limit: self.env.config.max_activations,
            });
        }
        let body = self.env.program.func(func);
        debug_assert_eq!(body.param_count, args.len());
        let mut locals = vec![Value::Int(0); body.local_count];
        for (i, a) in args.into_iter().enumerate() {
            locals[i] = a;
        }
        if fresh {
            self.counter_frames.push(0);
            self.stats.max_counter_depth =
                self.stats.max_counter_depth.max(self.counter_frames.len());
        }
        self.activations.push(Activation {
            func,
            block: body.entry,
            idx: 0,
            locals,
            ret_dst,
            fresh,
            loops: Vec::new(),
            gen: self.env.gen_counter.fetch_add(1, Ordering::Relaxed),
        });
        self.stats.max_activation_depth =
            self.stats.max_activation_depth.max(self.activations.len());
        Ok(())
    }

    /// Builds the current progress key from the counter frames and the
    /// active loops of each activation.
    fn current_key(&self) -> ProgressKey {
        debug_assert_eq!(
            self.counter_frames.len(),
            1 + self.activations.iter().filter(|a| a.fresh).count()
        );
        let mut frames = Vec::with_capacity(self.counter_frames.len());
        let mut fi = 0usize;
        let mut cur = FrameKey {
            loops: Vec::new(),
            cnt: self.counter_frames[0],
        };
        for act in &self.activations {
            if act.fresh {
                frames.push(std::mem::take(&mut cur));
                fi += 1;
                cur.cnt = self.counter_frames[fi];
            }
            cur.loops.extend(act.loops.iter().copied());
        }
        frames.push(cur);
        ProgressKey { frames }
    }

    fn cnt(&mut self) -> &mut u64 {
        self.counter_frames.last_mut().expect("counter stack")
    }

    fn execute(&mut self) -> Result<MachineEnd, Trap> {
        let program = Arc::clone(&self.env.program);
        let observe_steps = self.env.hooks.observes_steps();
        loop {
            if self.env.stop.should_stop() {
                return Ok(MachineEnd::Stopped);
            }
            self.stats.steps += 1;
            if self.stats.steps > self.env.config.max_steps {
                return Err(Trap::StepLimitExceeded {
                    limit: self.env.config.max_steps,
                });
            }
            let (func, block, idx) = {
                let act = self.activations.last().expect("active frame");
                (act.func, act.block, act.idx)
            };
            let body = &program.functions[func.index()];
            let bb = &body.blocks[block.index()];
            if observe_steps {
                self.env.hooks.on_step(&self.thread, func, block.0, idx);
            }
            if idx < bb.instrs.len() {
                self.activations.last_mut().expect("active frame").idx += 1;
                match self.exec_instr(func, &bb.instrs[idx])? {
                    Flow::Continue => {}
                    Flow::Ended(end) => return Ok(end),
                }
            } else {
                match self.exec_terminator(&bb.term)? {
                    Flow::Continue => {}
                    Flow::Ended(end) => return Ok(end),
                }
            }
        }
    }

    fn goto(&mut self, block: BlockId) {
        let act = self.activations.last_mut().expect("active frame");
        act.block = block;
        act.idx = 0;
    }

    fn exec_terminator(&mut self, term: &Terminator) -> Result<Flow, Trap> {
        match term {
            Terminator::Jump(b) => {
                self.goto(*b);
                Ok(Flow::Continue)
            }
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            } => {
                let target = if self.local(*cond).truthy() {
                    *then_bb
                } else {
                    *else_bb
                };
                self.goto(target);
                Ok(Flow::Continue)
            }
            Terminator::Return(slot) => {
                let value = match slot {
                    Some(s) => self.local(*s).clone(),
                    None => Value::Int(0),
                };
                let act = self.activations.pop().expect("active frame");
                if act.fresh {
                    self.counter_frames.pop();
                }
                let depth = self.activations.len();
                self.jmpbufs.retain(|j| j.depth <= depth);
                if self.activations.is_empty() {
                    return Ok(Flow::Ended(MachineEnd::Finished(value)));
                }
                self.set_local(act.ret_dst, value);
                Ok(Flow::Continue)
            }
        }
    }

    fn exec_instr(&mut self, func: FuncId, instr: &Instr) -> Result<Flow, Trap> {
        match instr {
            Instr::Const { dst, value } => {
                let v = const_to_value(value);
                self.set_local(*dst, v);
            }
            Instr::Copy { dst, src } => {
                let v = self.local(*src).clone();
                self.set_local(*dst, v);
            }
            Instr::LoadGlobal { dst, global } => {
                let v = self.env.globals.get(*global);
                self.set_local(*dst, v);
            }
            Instr::StoreGlobal { global, src } => {
                let v = self.local(*src).clone();
                self.env.globals.set(*global, v);
            }
            Instr::StoreIndexGlobal { global, index, src } => {
                let idx = self.local(*index).clone();
                let v = self.local(*src).clone();
                self.env.globals.store_index(*global, &idx, v)?;
            }
            Instr::StoreIndexLocal { local, index, src } => {
                let idx = self.local(*index).clone();
                let v = self.local(*src).clone();
                let act = self.activations.last_mut().expect("active frame");
                store_index(&mut act.locals[local.index()], &idx, v)?;
            }
            Instr::Unary { dst, op, operand } => {
                let v = eval_unary(*op, self.local(*operand))?;
                self.set_local(*dst, v);
            }
            Instr::Binary { dst, op, lhs, rhs } => {
                let v = eval_binary(*op, self.local(*lhs), self.local(*rhs))?;
                self.set_local(*dst, v);
            }
            Instr::Index { dst, base, index } => {
                let v = eval_index(self.local(*base), self.local(*index))?;
                self.set_local(*dst, v);
            }
            Instr::MakeArray { dst, elems } => {
                let v = Value::arr(elems.iter().map(|e| self.local(*e).clone()).collect());
                self.set_local(*dst, v);
            }
            Instr::FuncRef { dst, func } => {
                self.set_local(*dst, Value::Func(*func));
            }
            Instr::CallLib { dst, lib, args } => {
                let argv: Vec<Value> = args.iter().map(|a| self.local(*a).clone()).collect();
                let v = eval_lib(*lib, &argv)?;
                self.set_local(*dst, v);
            }
            Instr::Call {
                dst,
                func: callee,
                args,
                fresh_frame,
                ..
            } => {
                let argv: Vec<Value> = args.iter().map(|a| self.local(*a).clone()).collect();
                self.push_activation(*callee, argv, *dst, *fresh_frame)?;
            }
            Instr::CallIndirect {
                dst, callee, args, ..
            } => {
                let callee_v = self.local(*callee).clone();
                let Value::Func(fid) = callee_v else {
                    return Err(Trap::NotCallable {
                        found: callee_v.type_name(),
                    });
                };
                let body = self.env.program.func(fid);
                if body.param_count != args.len() {
                    return Err(Trap::ArityMismatch {
                        callee: body.name.clone(),
                        expected: body.param_count,
                        given: args.len(),
                    });
                }
                let argv: Vec<Value> = args.iter().map(|a| self.local(*a).clone()).collect();
                // Indirect calls always get a fresh counter frame (§6).
                self.push_activation(fid, argv, *dst, true)?;
            }
            Instr::Syscall {
                dst,
                sys,
                args,
                site,
            } => {
                return self.exec_syscall(func, *dst, *sys, args, *site);
            }
            Instr::CntAdd { delta } => {
                *self.cnt() += delta;
            }
            Instr::LoopEnter { loop_id } => {
                let uid = LoopUid::new(func.0, loop_id.0);
                self.activations
                    .last_mut()
                    .expect("active frame")
                    .loops
                    .push((uid, 0));
            }
            Instr::LoopBackedge { loop_id, sub } => {
                let key = self.current_key();
                self.stats.barrier_waits += 1;
                if ldx_obs::enabled() {
                    let t0 = std::time::Instant::now();
                    self.env
                        .hooks
                        .loop_barrier(&self.thread, &key, &self.env.stop)?;
                    let ns = t0.elapsed().as_nanos() as u64;
                    self.stats.barrier_wait_ns += ns;
                    ldx_obs::histogram_record("runtime.barrier_wait_ns", ns);
                } else {
                    self.env
                        .hooks
                        .loop_barrier(&self.thread, &key, &self.env.stop)?;
                }
                let uid = LoopUid::new(func.0, loop_id.0);
                let act = self.activations.last_mut().expect("active frame");
                let entry = act
                    .loops
                    .iter_mut()
                    .rev()
                    .find(|(l, _)| *l == uid)
                    .expect("backedge of an entered loop");
                entry.1 += 1;
                let cnt = self.cnt();
                debug_assert!(*cnt >= *sub, "backedge reset underflow");
                *cnt = cnt.saturating_sub(*sub);
            }
            Instr::LoopExit { loop_id, add } => {
                let uid = LoopUid::new(func.0, loop_id.0);
                let act = self.activations.last_mut().expect("active frame");
                let pos = act
                    .loops
                    .iter()
                    .rposition(|(l, _)| *l == uid)
                    .expect("exit of an entered loop");
                act.loops.truncate(pos);
                *self.cnt() += add;
            }
        }
        Ok(Flow::Continue)
    }

    fn exec_syscall(
        &mut self,
        func: FuncId,
        dst: LocalId,
        sys: Syscall,
        args: &[LocalId],
        site: SiteId,
    ) -> Result<Flow, Trap> {
        let argv: Vec<Value> = args.iter().map(|a| self.local(*a).clone()).collect();
        self.stats.syscalls += 1;
        // The dynamic half of the paper's scheme: the counter is
        // "incremented by 1 at each syscall" (§3); the static edge deltas
        // compensate around these increments.
        *self.cnt() += 1;
        let cnt = *self.counter_frames.last().expect("counter stack");
        self.stats.sample_counter(cnt, self.counter_frames.len());

        let ctx = SyscallCtx {
            thread: self.thread.clone(),
            key: self.current_key(),
            func,
            site,
            sys,
            stop: self.env.stop.clone(),
        };
        // A virtual `sleep` also yields the OS scheduler: Lx threads
        // genuinely interleave at sleep points (the substrate's stand-in
        // for real blocking), which is what makes unprotected races in the
        // concurrent workloads nondeterministic run to run.
        if sys == Syscall::Sleep {
            std::thread::yield_now();
        }
        match self.env.hooks.syscall(&ctx, &argv)? {
            SysOutcome::Value(v) => {
                self.set_local(dst, v);
                Ok(Flow::Continue)
            }
            SysOutcome::Exit(code) => {
                self.env.stop.request_exit(code);
                Ok(Flow::Ended(MachineEnd::Stopped))
            }
            SysOutcome::DoLocal => match sys {
                Syscall::Spawn => {
                    self.do_spawn(dst, &argv)?;
                    Ok(Flow::Continue)
                }
                Syscall::Join => {
                    let tid = argv[0].as_int()?;
                    let v = self.env.registry.join(tid)?;
                    self.set_local(dst, v);
                    Ok(Flow::Continue)
                }
                Syscall::Exit => {
                    let code = argv[0].as_int()?;
                    self.env.stop.request_exit(code);
                    Ok(Flow::Ended(MachineEnd::Stopped))
                }
                Syscall::Setjmp => {
                    let act = self.activations.last().expect("active frame");
                    self.jmpbufs.push(JmpBuf {
                        depth: self.activations.len(),
                        gen: act.gen,
                        block: act.block,
                        idx: act.idx,
                        dst,
                        counter_frames: self.counter_frames.clone(),
                        loops_snapshot: self.activations.iter().map(|a| a.loops.clone()).collect(),
                    });
                    self.set_local(dst, Value::Int(0));
                    Ok(Flow::Continue)
                }
                Syscall::Longjmp => {
                    let v = argv[0].as_int()?;
                    self.do_longjmp(v)?;
                    Ok(Flow::Continue)
                }
                other => Err(Trap::Aborted {
                    reason: format!("hooks returned DoLocal for OS syscall `{other}`"),
                }),
            },
        }
    }

    fn do_spawn(&mut self, dst: LocalId, argv: &[Value]) -> Result<(), Trap> {
        let Value::Func(fid) = &argv[0] else {
            return Err(Trap::BadSpawnTarget {
                detail: format!("first argument is a {}", argv[0].type_name()),
            });
        };
        let body = self.env.program.func(*fid);
        if body.param_count != 1 {
            return Err(Trap::BadSpawnTarget {
                detail: format!(
                    "`{}` takes {} parameters; spawn targets take exactly 1",
                    body.name, body.param_count
                ),
            });
        }
        let child_key = self.thread.child(self.spawn_count);
        self.spawn_count += 1;
        self.stats.threads_spawned += 1;
        let tid = child_key.tid();

        let env = Arc::clone(&self.env);
        let fid = *fid;
        let arg = argv[1].clone();
        let ck = child_key.clone();
        let handle = std::thread::Builder::new()
            .name(child_key.to_string())
            .spawn(move || {
                let mut machine = Machine::new(Arc::clone(&env), ck.clone());
                let result = machine.run_function(fid, vec![arg]);
                machine.finish();
                env.hooks.thread_finished(&ck);
                match result {
                    Ok(MachineEnd::Finished(v)) => Ok(v),
                    Ok(MachineEnd::Stopped) => Ok(Value::Int(0)),
                    Err(trap) => {
                        env.stop.request_trap(trap.clone());
                        Err(trap)
                    }
                }
            })
            .expect("OS thread spawn failed");
        self.env.registry.register(tid, handle);
        self.set_local(dst, Value::Int(tid));
        Ok(())
    }

    fn do_longjmp(&mut self, v: i64) -> Result<(), Trap> {
        let buf = self.jmpbufs.pop().ok_or(Trap::LongjmpWithoutSetjmp)?;
        if buf.depth > self.activations.len() || self.activations[buf.depth - 1].gen != buf.gen {
            return Err(Trap::LongjmpWithoutSetjmp);
        }
        // Unwind to the saved depth; restore the counter state saved at
        // setjmp (paper §6: "saving a copy of the counter stack at the
        // setjmp which will be restored upon the longjmp").
        self.activations.truncate(buf.depth);
        let depth = self.activations.len();
        self.jmpbufs.retain(|j| j.depth <= depth);
        self.counter_frames = buf.counter_frames.clone();
        for (i, loops) in buf.loops_snapshot.iter().enumerate() {
            self.activations[i].loops = loops.clone();
        }
        let act = self.activations.last_mut().expect("jmp target frame");
        act.block = buf.block;
        act.idx = buf.idx;
        let dst = buf.dst;
        self.set_local(dst, Value::Int(if v == 0 { 1 } else { v }));
        Ok(())
    }
}
