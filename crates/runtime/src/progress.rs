//! The runtime progress key: the dynamic counterpart of the static counter.
//!
//! The paper's alignment scheme compares *counter values* across the two
//! executions: equal values (plus equal PC and arguments) mean aligned
//! syscalls; a larger value means an execution is ahead (§3). This module
//! generalizes the scalar into a [`ProgressKey`] with three components,
//! matching the three runtime mechanisms of the scheme:
//!
//! * a **scalar counter** per *fresh frame* — indirect and recursive calls
//!   save the counter and restart from zero (paper §5–6), so progress is a
//!   stack of scalars;
//! * **loop iteration epochs** — the backedge barrier aligns iteration `i`
//!   of the master with iteration `i` of the slave (paper §5), so within an
//!   instrumented loop the iteration number is part of "where we are";
//! * the position `(function, site)` — the "PC" — which is *not* part of
//!   the key but is compared separately when matching syscalls.
//!
//! [`ProgressKey::cmp_progress`] orders two keys: `Behind`/`Ahead` drive
//! blocking ("slave waits until the master catches up"), `Equal` triggers
//! exact matching, and `Divergent` means the executions took different
//! paths and no alignment at this key is possible anymore — the syscall
//! executes decoupled (paper §4.2, cases 1–3).

use std::fmt;

/// Identifies an instrumented loop program-wide: `(function, loop)` packed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LoopUid(pub u64);

impl LoopUid {
    /// Packs a function id and per-function loop id.
    pub fn new(func: u32, loop_id: u32) -> Self {
        LoopUid((u64::from(func) << 32) | u64::from(loop_id))
    }
}

/// Progress within one fresh counter frame.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct FrameKey {
    /// Active instrumented loops (outermost first) with their iteration
    /// epochs.
    pub loops: Vec<(LoopUid, u64)>,
    /// The frame's scalar counter.
    pub cnt: u64,
}

/// A full progress key: one [`FrameKey`] per fresh frame, outermost first.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ProgressKey {
    /// The frame keys, outermost first. Never empty.
    pub frames: Vec<FrameKey>,
}

/// The result of comparing two progress keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgressOrder {
    /// `self` has strictly less progress than `other`.
    Behind,
    /// Identical progress: exact matching applies.
    Equal,
    /// `self` has strictly more progress than `other`.
    Ahead,
    /// The executions took different paths: neither can reach the other's
    /// key anymore.
    Divergent,
}

impl ProgressKey {
    /// The initial key of a fresh execution.
    pub fn start() -> Self {
        ProgressKey {
            frames: vec![FrameKey::default()],
        }
    }

    /// The terminal key, strictly ahead of every reachable key; published
    /// when an execution (or thread) finishes so its peer never blocks on
    /// it again.
    pub fn top() -> Self {
        ProgressKey {
            frames: vec![FrameKey {
                loops: Vec::new(),
                cnt: u64::MAX,
            }],
        }
    }

    /// Whether this is the terminal key.
    pub fn is_top(&self) -> bool {
        self.frames.len() == 1 && self.frames[0].cnt == u64::MAX
    }

    /// Compares the progress of `self` against `other`.
    pub fn cmp_progress(&self, other: &ProgressKey) -> ProgressOrder {
        let mut i = 0;
        loop {
            match (self.frames.get(i), other.frames.get(i)) {
                (Some(a), Some(b)) => match cmp_frames(a, b) {
                    ProgressOrder::Equal => i += 1,
                    decided => return decided,
                },
                // The deeper execution entered a fresh call the other has
                // not entered (yet): it is ahead.
                (Some(_), None) => return ProgressOrder::Ahead,
                (None, Some(_)) => return ProgressOrder::Behind,
                (None, None) => return ProgressOrder::Equal,
            }
        }
    }
}

fn cmp_frames(a: &FrameKey, b: &FrameKey) -> ProgressOrder {
    let mut i = 0;
    loop {
        match (a.loops.get(i), b.loops.get(i)) {
            (Some((la, ea)), Some((lb, eb))) => {
                if la == lb {
                    match ea.cmp(eb) {
                        std::cmp::Ordering::Less => return ProgressOrder::Behind,
                        std::cmp::Ordering::Greater => return ProgressOrder::Ahead,
                        std::cmp::Ordering::Equal => i += 1,
                    }
                } else {
                    // Different loops at the same nesting position: the
                    // executions took different paths. Scalars still order
                    // them when unequal (join compensation guarantees
                    // soundness); equal scalars mean true divergence.
                    return match a.cnt.cmp(&b.cnt) {
                        std::cmp::Ordering::Less => ProgressOrder::Behind,
                        std::cmp::Ordering::Greater => ProgressOrder::Ahead,
                        std::cmp::Ordering::Equal => ProgressOrder::Divergent,
                    };
                }
            }
            (None, None) => {
                return match a.cnt.cmp(&b.cnt) {
                    std::cmp::Ordering::Less => ProgressOrder::Behind,
                    std::cmp::Ordering::Greater => ProgressOrder::Ahead,
                    std::cmp::Ordering::Equal => ProgressOrder::Equal,
                }
            }
            (None, Some(_)) | (Some(_), None) => {
                // One execution is inside an instrumented loop the other is
                // not in. The +1 exit strengthening makes post-loop scalars
                // strictly larger than in-loop scalars, so unequal scalars
                // decide; equal scalars mean the deeper one is at iteration
                // epoch > 0 (ahead) or exactly at loop entry (equal).
                return match a.cnt.cmp(&b.cnt) {
                    std::cmp::Ordering::Less => ProgressOrder::Behind,
                    std::cmp::Ordering::Greater => ProgressOrder::Ahead,
                    std::cmp::Ordering::Equal => {
                        let (longer, longer_is_a) = if a.loops.len() > b.loops.len() {
                            (a, true)
                        } else {
                            (b, false)
                        };
                        let entered = longer.loops[i..].iter().any(|&(_, e)| e > 0);
                        if !entered {
                            ProgressOrder::Equal
                        } else if longer_is_a {
                            ProgressOrder::Ahead
                        } else {
                            ProgressOrder::Behind
                        }
                    }
                };
            }
        }
    }
}

impl fmt::Display for ProgressKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, frame) in self.frames.iter().enumerate() {
            if i > 0 {
                write!(f, "/")?;
            }
            for (lid, epoch) in &frame.loops {
                write!(f, "L{:x}#{}:", lid.0, epoch)?;
            }
            if frame.cnt == u64::MAX {
                write!(f, "END")?;
            } else {
                write!(f, "{}", frame.cnt)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(frames: Vec<FrameKey>) -> ProgressKey {
        ProgressKey { frames }
    }
    fn flat(cnt: u64) -> ProgressKey {
        key(vec![FrameKey { loops: vec![], cnt }])
    }
    fn lp(n: u64) -> LoopUid {
        LoopUid(n)
    }

    #[test]
    fn scalar_ordering() {
        assert_eq!(flat(3).cmp_progress(&flat(5)), ProgressOrder::Behind);
        assert_eq!(flat(5).cmp_progress(&flat(3)), ProgressOrder::Ahead);
        assert_eq!(flat(4).cmp_progress(&flat(4)), ProgressOrder::Equal);
    }

    #[test]
    fn top_is_ahead_of_everything() {
        let top = ProgressKey::top();
        assert!(top.is_top());
        assert_eq!(top.cmp_progress(&flat(1_000_000)), ProgressOrder::Ahead);
        assert_eq!(flat(0).cmp_progress(&top), ProgressOrder::Behind);
        assert_eq!(top.cmp_progress(&ProgressKey::top()), ProgressOrder::Equal);
        let deep = key(vec![
            FrameKey {
                loops: vec![(lp(1), 9)],
                cnt: 3,
            },
            FrameKey {
                loops: vec![],
                cnt: 7,
            },
        ]);
        assert_eq!(top.cmp_progress(&deep), ProgressOrder::Ahead);
    }

    #[test]
    fn loop_epochs_dominate_scalars() {
        // Same loop, later iteration but smaller scalar: still ahead.
        let early = key(vec![FrameKey {
            loops: vec![(lp(1), 1)],
            cnt: 9,
        }]);
        let later = key(vec![FrameKey {
            loops: vec![(lp(1), 4)],
            cnt: 2,
        }]);
        assert_eq!(later.cmp_progress(&early), ProgressOrder::Ahead);
        assert_eq!(early.cmp_progress(&later), ProgressOrder::Behind);
    }

    #[test]
    fn same_loop_same_epoch_compares_scalars() {
        let a = key(vec![FrameKey {
            loops: vec![(lp(1), 2)],
            cnt: 3,
        }]);
        let b = key(vec![FrameKey {
            loops: vec![(lp(1), 2)],
            cnt: 5,
        }]);
        assert_eq!(a.cmp_progress(&b), ProgressOrder::Behind);
    }

    #[test]
    fn different_loops_with_equal_scalars_diverge() {
        let a = key(vec![FrameKey {
            loops: vec![(lp(1), 0)],
            cnt: 3,
        }]);
        let b = key(vec![FrameKey {
            loops: vec![(lp(2), 0)],
            cnt: 3,
        }]);
        assert_eq!(a.cmp_progress(&b), ProgressOrder::Divergent);
        // Unequal scalars still order them.
        let c = key(vec![FrameKey {
            loops: vec![(lp(2), 0)],
            cnt: 9,
        }]);
        assert_eq!(a.cmp_progress(&c), ProgressOrder::Behind);
    }

    #[test]
    fn in_loop_vs_outside_loop() {
        // Outside at a larger scalar (post-exit, +1 strictness): ahead.
        let inside = key(vec![FrameKey {
            loops: vec![(lp(1), 7)],
            cnt: 3,
        }]);
        let past = flat(4);
        assert_eq!(past.cmp_progress(&inside), ProgressOrder::Ahead);
        assert_eq!(inside.cmp_progress(&past), ProgressOrder::Behind);

        // Equal scalars, epoch 0: both effectively at the loop entry.
        let at_entry = flat(3);
        let just_entered = key(vec![FrameKey {
            loops: vec![(lp(1), 0)],
            cnt: 3,
        }]);
        assert_eq!(just_entered.cmp_progress(&at_entry), ProgressOrder::Equal);
        // Equal scalars, epoch > 0: the in-loop run is ahead of a run
        // still at the entry point.
        assert_eq!(inside.cmp_progress(&flat(3)), ProgressOrder::Ahead);
        assert_eq!(flat(3).cmp_progress(&inside), ProgressOrder::Behind);
    }

    #[test]
    fn fresh_frames_deeper_is_ahead() {
        let caller = flat(5);
        let inside_call = key(vec![
            FrameKey {
                loops: vec![],
                cnt: 5,
            },
            FrameKey {
                loops: vec![],
                cnt: 2,
            },
        ]);
        assert_eq!(inside_call.cmp_progress(&caller), ProgressOrder::Ahead);
        assert_eq!(caller.cmp_progress(&inside_call), ProgressOrder::Behind);
    }

    #[test]
    fn outer_frame_difference_decides_before_depth() {
        let a = key(vec![
            FrameKey {
                loops: vec![],
                cnt: 9,
            },
            FrameKey {
                loops: vec![],
                cnt: 0,
            },
        ]);
        let b = flat(10);
        assert_eq!(a.cmp_progress(&b), ProgressOrder::Behind);
    }

    #[test]
    fn nested_loop_epochs_compare_outer_first() {
        let a = key(vec![FrameKey {
            loops: vec![(lp(1), 3), (lp(2), 9)],
            cnt: 2,
        }]);
        let b = key(vec![FrameKey {
            loops: vec![(lp(1), 4), (lp(2), 0)],
            cnt: 2,
        }]);
        assert_eq!(a.cmp_progress(&b), ProgressOrder::Behind);
    }

    #[test]
    fn display_is_readable() {
        let k = key(vec![
            FrameKey {
                loops: vec![(lp(0x100000001), 2)],
                cnt: 4,
            },
            FrameKey {
                loops: vec![],
                cnt: 0,
            },
        ]);
        let text = k.to_string();
        assert!(text.contains('#'), "{text}");
        assert!(text.contains('/'), "{text}");
        assert!(ProgressKey::top().to_string().contains("END"));
    }

    #[test]
    fn start_key_is_zero() {
        assert_eq!(
            ProgressKey::start().cmp_progress(&flat(0)),
            ProgressOrder::Equal
        );
    }

    mod order_properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_frame() -> impl Strategy<Value = FrameKey> {
            (proptest::collection::vec((0u64..4, 0u64..4), 0..3), 0u64..8).prop_map(
                |(loops, cnt)| FrameKey {
                    loops: loops.into_iter().map(|(l, e)| (LoopUid(l), e)).collect(),
                    cnt,
                },
            )
        }

        fn arb_key() -> impl Strategy<Value = ProgressKey> {
            proptest::collection::vec(arb_frame(), 1..4).prop_map(|frames| ProgressKey { frames })
        }

        proptest! {
            /// Antisymmetry: swapping the operands flips Behind/Ahead and
            /// preserves Equal/Divergent.
            #[test]
            fn cmp_is_antisymmetric(a in arb_key(), b in arb_key()) {
                let ab = a.cmp_progress(&b);
                let ba = b.cmp_progress(&a);
                let expected = match ab {
                    ProgressOrder::Behind => ProgressOrder::Ahead,
                    ProgressOrder::Ahead => ProgressOrder::Behind,
                    ProgressOrder::Equal => ProgressOrder::Equal,
                    ProgressOrder::Divergent => ProgressOrder::Divergent,
                };
                prop_assert_eq!(ba, expected);
            }

            /// Reflexivity: every key equals itself.
            #[test]
            fn cmp_is_reflexive(a in arb_key()) {
                prop_assert_eq!(a.cmp_progress(&a), ProgressOrder::Equal);
            }

            /// The terminal key dominates every generated key.
            #[test]
            fn top_dominates(a in arb_key()) {
                prop_assert_eq!(
                    ProgressKey::top().cmp_progress(&a),
                    ProgressOrder::Ahead
                );
            }
        }
    }
}
