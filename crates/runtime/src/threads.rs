//! Lx thread identity, the thread registry, and the lock table.

use crate::trap::Trap;
use crate::value::Value;
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A structural thread identity: the root thread is `[0]`; the `k`-th
/// thread spawned by a thread `K` is `K + [k+1]`.
///
/// Because it is derived from spawn *structure* rather than creation
/// timing, the same Lx thread has the same key in the master and the slave
/// — this is how the dual-execution engine pairs threads up (paper §7).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ThreadKey(Vec<u32>);

impl ThreadKey {
    /// The root (main) thread.
    pub fn root() -> Self {
        ThreadKey(vec![0])
    }

    /// The key of this thread's `index`-th spawned child (0-based).
    pub fn child(&self, index: u32) -> Self {
        let mut v = self.0.clone();
        v.push(index + 1);
        ThreadKey(v)
    }

    /// A deterministic Lx-visible thread id derived from the key: equal in
    /// master and slave for paired threads.
    pub fn tid(&self) -> i64 {
        self.0.iter().fold(7i64, |acc, &d| {
            acc.wrapping_mul(31).wrapping_add(i64::from(d) + 1)
        })
    }
}

impl fmt::Display for ThreadKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ".")?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

/// A cooperative stop signal: set on `exit()`, on any trap, or when the
/// dual-execution engine aborts an execution. Every machine polls it.
#[derive(Debug, Clone, Default)]
pub struct StopSignal(Arc<StopInner>);

#[derive(Debug, Default)]
struct StopInner {
    stopped: AtomicBool,
    exit_code: AtomicI64,
    trap: Mutex<Option<Trap>>,
}

impl StopSignal {
    /// A fresh, unset signal.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cooperative termination with an exit code (Lx `exit`).
    pub fn request_exit(&self, code: i64) {
        self.0.exit_code.store(code, Ordering::SeqCst);
        self.0.stopped.store(true, Ordering::SeqCst);
    }

    /// Requests termination because of a trap; the first trap wins.
    pub fn request_trap(&self, trap: Trap) {
        let mut slot = self.0.trap.lock();
        if slot.is_none() {
            *slot = Some(trap);
        }
        self.0.stopped.store(true, Ordering::SeqCst);
    }

    /// Whether execution should wind down.
    pub fn should_stop(&self) -> bool {
        self.0.stopped.load(Ordering::Relaxed)
    }

    /// The recorded trap, if any.
    pub fn trap(&self) -> Option<Trap> {
        self.0.trap.lock().clone()
    }

    /// The recorded exit code (0 unless `request_exit` was called).
    pub fn exit_code(&self) -> i64 {
        self.0.exit_code.load(Ordering::SeqCst)
    }
}

/// Live Lx thread handles, keyed by deterministic tid.
#[derive(Debug, Default)]
pub struct ThreadRegistry {
    handles: Mutex<HashMap<i64, JoinHandle<Result<Value, Trap>>>>,
}

impl ThreadRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a running thread under `tid`.
    pub fn register(&self, tid: i64, handle: JoinHandle<Result<Value, Trap>>) {
        self.handles.lock().insert(tid, handle);
    }

    /// Joins thread `tid`, returning its Lx value.
    ///
    /// # Errors
    ///
    /// [`Trap::BadJoin`] for unknown tids; the thread's own trap if it
    /// trapped; [`Trap::ThreadPanicked`] if it panicked at the Rust level.
    pub fn join(&self, tid: i64) -> Result<Value, Trap> {
        let handle = self
            .handles
            .lock()
            .remove(&tid)
            .ok_or(Trap::BadJoin { tid })?;
        handle.join().map_err(|_| Trap::ThreadPanicked)?
    }

    /// Joins every remaining thread (used at program teardown). Returns the
    /// first trap encountered, if any.
    pub fn drain(&self) -> Option<Trap> {
        let handles: Vec<_> = {
            let mut map = self.handles.lock();
            map.drain().collect()
        };
        let mut first = None;
        for (_, handle) in handles {
            match handle.join() {
                Ok(Ok(_)) => {}
                Ok(Err(trap)) => first = first.or(Some(trap)),
                Err(_) => first = first.or(Some(Trap::ThreadPanicked)),
            }
        }
        first
    }
}

/// Lx mutexes: `lock(id)` / `unlock(id)` syscalls.
///
/// Real blocking mutual exclusion between Lx threads, with a cooperative
/// escape hatch (the stop signal) so that aborted executions never deadlock.
#[derive(Debug, Default)]
pub struct LockTable {
    held: Mutex<HashMap<i64, ThreadKey>>,
    cv: Condvar,
}

impl LockTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Acquires lock `id` for `owner`, blocking until available. Returns
    /// `false` if the stop signal fired while waiting. Re-acquiring a lock
    /// already held by `owner` succeeds (recursive-friendly, matching the
    /// forgiving behavior workload programs expect).
    pub fn lock(&self, id: i64, owner: &ThreadKey, stop: &StopSignal) -> bool {
        let mut held = self.held.lock();
        loop {
            match held.get(&id) {
                None => {
                    held.insert(id, owner.clone());
                    return true;
                }
                Some(existing) if existing == owner => return true,
                Some(_) => {
                    if stop.should_stop() {
                        return false;
                    }
                    self.cv
                        .wait_for(&mut held, std::time::Duration::from_millis(5));
                }
            }
        }
    }

    /// Releases lock `id`. Releasing a lock that is not held is a no-op
    /// (returns `false`).
    pub fn unlock(&self, id: i64) -> bool {
        let mut held = self.held.lock();
        let was = held.remove(&id).is_some();
        drop(held);
        self.cv.notify_all();
        was
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_keys_are_structural() {
        let root = ThreadKey::root();
        let a = root.child(0);
        let b = root.child(1);
        let aa = a.child(0);
        assert_ne!(a, b);
        assert_ne!(a, aa);
        assert_eq!(a, ThreadKey::root().child(0));
        assert_eq!(a.to_string(), "t0.1");
    }

    #[test]
    fn tids_are_deterministic_and_distinct_for_small_trees() {
        let root = ThreadKey::root();
        let mut seen = std::collections::HashSet::new();
        assert!(seen.insert(root.tid()));
        for i in 0..10 {
            let c = root.child(i);
            assert!(seen.insert(c.tid()));
            for j in 0..10 {
                assert!(seen.insert(c.child(j).tid()));
            }
        }
    }

    #[test]
    fn stop_signal_records_first_trap() {
        let s = StopSignal::new();
        assert!(!s.should_stop());
        s.request_trap(Trap::DivisionByZero);
        s.request_trap(Trap::LongjmpWithoutSetjmp);
        assert!(s.should_stop());
        assert_eq!(s.trap(), Some(Trap::DivisionByZero));
    }

    #[test]
    fn stop_signal_exit_code() {
        let s = StopSignal::new();
        s.request_exit(42);
        assert!(s.should_stop());
        assert_eq!(s.exit_code(), 42);
        assert_eq!(s.trap(), None);
    }

    #[test]
    fn registry_join_unknown_is_trap() {
        let r = ThreadRegistry::new();
        assert_eq!(r.join(99), Err(Trap::BadJoin { tid: 99 }));
    }

    #[test]
    fn registry_joins_threads() {
        let r = ThreadRegistry::new();
        let h = std::thread::spawn(|| Ok(Value::Int(7)));
        r.register(5, h);
        assert_eq!(r.join(5), Ok(Value::Int(7)));
        assert!(r.join(5).is_err(), "double join fails");
    }

    #[test]
    fn drain_collects_traps() {
        let r = ThreadRegistry::new();
        r.register(1, std::thread::spawn(|| Ok(Value::Int(1))));
        r.register(2, std::thread::spawn(|| Err(Trap::DivisionByZero)));
        assert_eq!(r.drain(), Some(Trap::DivisionByZero));
        assert_eq!(r.drain(), None);
    }

    #[test]
    fn lock_provides_mutual_exclusion() {
        let table = Arc::new(LockTable::new());
        let stop = StopSignal::new();
        let counter = Arc::new(AtomicI64::new(0));
        let mut handles = Vec::new();
        for i in 0..4 {
            let table = Arc::clone(&table);
            let stop = stop.clone();
            let counter = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                let me = ThreadKey::root().child(i);
                for _ in 0..100 {
                    assert!(table.lock(9, &me, &stop));
                    // Critical section: non-atomic read-modify-write.
                    let v = counter.load(Ordering::SeqCst);
                    std::hint::spin_loop();
                    counter.store(v + 1, Ordering::SeqCst);
                    table.unlock(9);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 400);
    }

    #[test]
    fn lock_respects_stop_signal() {
        let table = Arc::new(LockTable::new());
        let stop = StopSignal::new();
        let a = ThreadKey::root();
        let b = ThreadKey::root().child(0);
        assert!(table.lock(1, &a, &stop));
        let t2 = {
            let table = Arc::clone(&table);
            let stop = stop.clone();
            std::thread::spawn(move || table.lock(1, &b, &stop))
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        stop.request_exit(0);
        assert!(!t2.join().unwrap(), "waiter observes the stop signal");
    }

    #[test]
    fn relock_by_owner_succeeds() {
        let table = LockTable::new();
        let stop = StopSignal::new();
        let me = ThreadKey::root();
        assert!(table.lock(3, &me, &stop));
        assert!(table.lock(3, &me, &stop));
        assert!(table.unlock(3));
        assert!(!table.unlock(3));
    }
}
