//! Dynamic execution statistics (the "Dyn. Cnt." columns of paper Table 1).

/// Statistics accumulated during one execution (all threads merged).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Interpreter steps executed.
    pub steps: u64,
    /// Syscalls issued.
    pub syscalls: u64,
    /// Sum of the counter value observed at each syscall.
    pub cnt_sum: u128,
    /// Number of counter samples (== syscalls).
    pub cnt_samples: u64,
    /// Maximum counter value observed at a syscall.
    pub cnt_max: u64,
    /// Maximum depth of the fresh-frame counter stack (paper: "maximum
    /// depth of the stack is small").
    pub max_counter_depth: usize,
    /// Maximum activation (call) depth.
    pub max_activation_depth: usize,
    /// Lx threads spawned.
    pub threads_spawned: u64,
    /// Loop-backedge barrier crossings (hook invocations at backedges).
    pub barrier_waits: u64,
    /// Nanoseconds spent inside barrier hooks. Only accumulated while
    /// `ldx_obs::enabled()` — zero in plain (untimed) runs.
    pub barrier_wait_ns: u64,
}

impl RunStats {
    /// Average counter value at syscalls (paper Table 1 "Avg.").
    pub fn cnt_avg(&self) -> f64 {
        if self.cnt_samples == 0 {
            0.0
        } else {
            self.cnt_sum as f64 / self.cnt_samples as f64
        }
    }

    /// Records one counter observation.
    pub fn sample_counter(&mut self, cnt: u64, depth: usize) {
        self.cnt_sum += u128::from(cnt);
        self.cnt_samples += 1;
        self.cnt_max = self.cnt_max.max(cnt);
        self.max_counter_depth = self.max_counter_depth.max(depth);
    }

    /// Merges another thread's statistics into this one.
    pub fn merge(&mut self, other: &RunStats) {
        self.steps += other.steps;
        self.syscalls += other.syscalls;
        self.cnt_sum += other.cnt_sum;
        self.cnt_samples += other.cnt_samples;
        self.cnt_max = self.cnt_max.max(other.cnt_max);
        self.max_counter_depth = self.max_counter_depth.max(other.max_counter_depth);
        self.max_activation_depth = self.max_activation_depth.max(other.max_activation_depth);
        self.threads_spawned += other.threads_spawned;
        self.barrier_waits += other.barrier_waits;
        self.barrier_wait_ns += other.barrier_wait_ns;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_and_average() {
        let mut s = RunStats::default();
        assert_eq!(s.cnt_avg(), 0.0);
        s.sample_counter(2, 1);
        s.sample_counter(4, 3);
        assert_eq!(s.cnt_avg(), 3.0);
        assert_eq!(s.cnt_max, 4);
        assert_eq!(s.max_counter_depth, 3);
    }

    #[test]
    fn merge_combines() {
        let mut a = RunStats {
            steps: 10,
            syscalls: 2,
            cnt_sum: 5,
            cnt_samples: 2,
            cnt_max: 3,
            max_counter_depth: 1,
            max_activation_depth: 4,
            threads_spawned: 1,
            barrier_waits: 3,
            barrier_wait_ns: 100,
        };
        let b = RunStats {
            steps: 5,
            syscalls: 1,
            cnt_sum: 9,
            cnt_samples: 1,
            cnt_max: 9,
            max_counter_depth: 2,
            max_activation_depth: 2,
            threads_spawned: 0,
            barrier_waits: 2,
            barrier_wait_ns: 50,
        };
        a.merge(&b);
        assert_eq!(a.steps, 15);
        assert_eq!(a.syscalls, 3);
        assert_eq!(a.cnt_max, 9);
        assert_eq!(a.max_counter_depth, 2);
        assert_eq!(a.max_activation_depth, 4);
        assert_eq!(a.barrier_waits, 5);
        assert_eq!(a.barrier_wait_ns, 150);
    }
}
