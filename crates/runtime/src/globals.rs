//! Shared global-variable storage.

use crate::trap::Trap;
use crate::value::{store_index, Value};
use ldx_ir::{Const, GlobalId, IrProgram};
use parking_lot::Mutex;

/// Global variable slots shared by all Lx threads of one execution.
///
/// Each slot has its own lock, so distinct globals never contend; accesses
/// to one slot are atomic at the *statement* level, while cross-statement
/// races (read-modify-write without `lock()`) remain observable — exactly
/// the "low-level data races" the paper cites as its false-positive source
/// (§8.3, Table 4).
#[derive(Debug)]
pub struct Globals {
    slots: Vec<Mutex<Value>>,
}

impl Globals {
    /// Initializes globals from the program's constant initializers.
    pub fn new(program: &IrProgram) -> Self {
        Globals {
            slots: program
                .globals
                .iter()
                .map(|(_, init)| Mutex::new(const_to_value(init)))
                .collect(),
        }
    }

    /// Reads a global (cloning its value).
    pub fn get(&self, id: GlobalId) -> Value {
        self.slots[id.index()].lock().clone()
    }

    /// Writes a global.
    pub fn set(&self, id: GlobalId, v: Value) {
        *self.slots[id.index()].lock() = v;
    }

    /// Stores into an element of a global array, atomically.
    ///
    /// # Errors
    ///
    /// Returns [`Trap`] when the global is not an array or the index is out
    /// of bounds.
    pub fn store_index(&self, id: GlobalId, index: &Value, v: Value) -> Result<(), Trap> {
        store_index(&mut self.slots[id.index()].lock(), index, v)
    }

    /// Number of global slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether there are no globals.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

/// Converts an IR constant to a runtime value.
pub fn const_to_value(c: &Const) -> Value {
    match c {
        Const::Int(v) => Value::Int(*v),
        Const::Str(s) => Value::str(s.as_str()),
        Const::Array(elems) => Value::arr(elems.iter().map(const_to_value).collect()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldx_ir::lower;
    use ldx_lang::compile;

    #[test]
    fn initializes_from_program() {
        let p = lower(&compile("global a = 3; global b = [1, \"x\"]; fn main() {}").unwrap());
        let g = Globals::new(&p);
        assert_eq!(g.len(), 2);
        assert_eq!(g.get(GlobalId(0)), Value::Int(3));
        assert_eq!(
            g.get(GlobalId(1)),
            Value::arr(vec![Value::Int(1), Value::Str("x".into())])
        );
    }

    #[test]
    fn set_and_store_index() {
        let p = lower(&compile("global a = [0, 0]; fn main() {}").unwrap());
        let g = Globals::new(&p);
        g.store_index(GlobalId(0), &Value::Int(1), Value::Int(5))
            .unwrap();
        assert_eq!(
            g.get(GlobalId(0)),
            Value::arr(vec![Value::Int(0), Value::Int(5)])
        );
        g.set(GlobalId(0), Value::Int(9));
        assert_eq!(g.get(GlobalId(0)), Value::Int(9));
        assert!(g
            .store_index(GlobalId(0), &Value::Int(0), Value::Int(1))
            .is_err());
    }

    #[test]
    fn empty_program_has_no_globals() {
        let p = lower(&compile("fn main() {}").unwrap());
        let g = Globals::new(&p);
        assert!(g.is_empty());
    }
}
