//! The Lx runtime: a CFG interpreter that maintains the LDX progress
//! counter and routes every syscall through pluggable hooks.
//!
//! This crate is the *execution substrate* of the reproduction. It knows
//! how to run one execution; the dual-execution engine (`ldx-dualex`) runs
//! two of them, coupled through a [`SyscallHooks`] implementation.
//!
//! Key pieces:
//!
//! * [`run_program`] — interpret an (instrumented) [`ldx_ir::IrProgram`];
//! * [`Value`] — dynamically typed Lx values;
//! * [`ProgressKey`] — the runtime form of the paper's counter: a scalar
//!   per fresh frame plus loop-iteration epochs;
//! * [`NativeHooks`] — plain single-execution dispatch to a virtual OS;
//! * Lx threads map to real OS threads ([`ThreadKey`] pairs them across
//!   dual executions), with `lock`/`unlock` as syscalls (paper §7);
//! * `setjmp`/`longjmp` with counter-stack save/restore (paper §6).
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use ldx_runtime::{run_program, ExecConfig, NativeHooks};
//! use ldx_vos::{Vos, VosConfig};
//!
//! let program = ldx_instrument::instrument(&ldx_ir::lower(&ldx_lang::compile(r#"
//!     fn main() {
//!         let fd = open("/greeting", 0);
//!         write(1, read(fd, 64));
//!         close(fd);
//!     }
//! "#)?)).into_program();
//!
//! let vos = Arc::new(Vos::new(&VosConfig::new().file("/greeting", "hi")));
//! let hooks = Arc::new(NativeHooks::new(Arc::clone(&vos)));
//! let outcome = run_program(Arc::new(program), hooks, ExecConfig::default())?;
//! assert_eq!(outcome.exit_code, 0);
//! assert_eq!(vos.file_contents("/dev/stdout").unwrap(), "hi");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod globals;
mod hooks;
mod libfns;
mod machine;
mod progress;
mod recording;
mod stats;
mod threads;
mod trap;
mod value;

pub use globals::{const_to_value, Globals};
pub use hooks::{from_sys_ret, to_sys_args, NativeHooks, SysOutcome, SyscallCtx, SyscallHooks};
pub use libfns::eval_lib;
pub use machine::{run_program, run_program_with_stop, ExecConfig, RunOutcome};
pub use progress::{FrameKey, LoopUid, ProgressKey, ProgressOrder};
pub use recording::{RecordingHooks, SyscallEvent};
pub use stats::RunStats;
pub use threads::{LockTable, StopSignal, ThreadKey, ThreadRegistry};
pub use trap::Trap;
pub use value::{eval_binary, eval_index, eval_unary, store_index, Value};

#[cfg(test)]
mod tests {
    use super::*;
    use ldx_vos::{PeerBehavior, Vos, VosConfig};
    use std::sync::Arc;

    fn run(src: &str, cfg: &VosConfig) -> (Result<RunOutcome, Trap>, Arc<Vos>) {
        let program = ldx_instrument::instrument(&ldx_ir::lower(&ldx_lang::compile(src).unwrap()))
            .into_program();
        let vos = Arc::new(Vos::new(cfg));
        let hooks = Arc::new(NativeHooks::new(Arc::clone(&vos)));
        let out = run_program(Arc::new(program), hooks, ExecConfig::default());
        (out, vos)
    }

    fn run_ok(src: &str, cfg: &VosConfig) -> (RunOutcome, Arc<Vos>) {
        let (out, vos) = run(src, cfg);
        (out.expect("program runs"), vos)
    }

    fn stdout(vos: &Vos) -> String {
        vos.file_contents("/dev/stdout").unwrap_or_default()
    }

    #[test]
    fn arithmetic_and_control_flow() {
        let (out, vos) = run_ok(
            r#"fn main() {
                let total = 0;
                for (let i = 1; i <= 10; i = i + 1) {
                    if (i % 2 == 0) { total = total + i; }
                }
                write(1, str(total));
                return total;
            }"#,
            &VosConfig::new(),
        );
        assert_eq!(stdout(&vos), "30");
        assert_eq!(out.result, Value::Int(30));
    }

    #[test]
    fn file_io_roundtrip() {
        let (_, vos) = run_ok(
            r#"fn main() {
                let fd = open("/in", 0);
                let data = read(fd, 100);
                close(fd);
                let out = open("/out", 1);
                write(out, upper(data));
                close(out);
            }"#,
            &VosConfig::new().file("/in", "shout"),
        );
        assert_eq!(vos.file_contents("/out").unwrap(), "SHOUT");
    }

    #[test]
    fn functions_and_recursion() {
        let (out, _) = run_ok(
            r#"
            fn fib(n) {
                if (n < 2) { return n; }
                return fib(n - 1) + fib(n - 2);
            }
            fn main() { return fib(15); }
            "#,
            &VosConfig::new(),
        );
        assert_eq!(out.result, Value::Int(610));
    }

    #[test]
    fn indirect_calls_dispatch() {
        let (out, _) = run_ok(
            r#"
            fn double(x) { return x * 2; }
            fn triple(x) { return x * 3; }
            fn main() {
                let fs = [&double, &triple];
                let total = 0;
                for (let i = 0; i < 2; i = i + 1) {
                    let f = fs[i];
                    total = total + f(10);
                }
                return total;
            }
            "#,
            &VosConfig::new(),
        );
        assert_eq!(out.result, Value::Int(50));
    }

    #[test]
    fn globals_and_arrays() {
        let (out, _) = run_ok(
            r#"
            global counts = [0, 0, 0];
            global total = 0;
            fn bump(i) { counts[i] = counts[i] + 1; return counts[i]; }
            fn main() {
                bump(1); bump(1); bump(2);
                total = counts[0] + counts[1] * 10 + counts[2] * 100;
                return total;
            }
            "#,
            &VosConfig::new(),
        );
        assert_eq!(out.result, Value::Int(120));
    }

    #[test]
    fn network_echo() {
        let (_, vos) = run_ok(
            r#"fn main() {
                let s = connect("srv");
                send(s, "hello");
                write(1, recv(s, 16));
            }"#,
            &VosConfig::new().peer("srv", PeerBehavior::Echo),
        );
        assert_eq!(stdout(&vos), "hello");
        assert_eq!(vos.sent_to("srv"), vec!["hello"]);
    }

    #[test]
    fn exit_stops_everything() {
        let (out, vos) = run_ok(
            r#"fn main() {
                write(1, "before");
                exit(3);
                write(1, "after");
            }"#,
            &VosConfig::new(),
        );
        assert_eq!(out.exit_code, 3);
        assert_eq!(stdout(&vos), "before");
    }

    #[test]
    fn traps_propagate() {
        let (out, _) = run("fn main() { let x = 1 / 0; }", &VosConfig::new());
        assert_eq!(out.unwrap_err(), Trap::DivisionByZero);

        let (out, _) = run(
            "fn main() { let a = [1]; let x = a[5]; }",
            &VosConfig::new(),
        );
        assert!(matches!(out.unwrap_err(), Trap::IndexOutOfBounds { .. }));
    }

    #[test]
    fn step_limit_guards_infinite_loops() {
        let program = ldx_instrument::instrument(&ldx_ir::lower(
            &ldx_lang::compile("fn main() { while (1) { } }").unwrap(),
        ))
        .into_program();
        let vos = Arc::new(Vos::new(&VosConfig::new()));
        let hooks = Arc::new(NativeHooks::new(vos));
        let out = run_program(
            Arc::new(program),
            hooks,
            ExecConfig {
                max_steps: 10_000,
                ..ExecConfig::default()
            },
        );
        assert!(matches!(out.unwrap_err(), Trap::StepLimitExceeded { .. }));
    }

    #[test]
    fn deep_lx_recursion_overflows_gracefully() {
        let (out, _) = run(
            "fn f(n) { return f(n + 1); } fn main() { f(0); }",
            &VosConfig::new(),
        );
        assert!(matches!(out.unwrap_err(), Trap::StackOverflow { .. }));
    }

    #[test]
    fn threads_spawn_join_and_share_globals() {
        let (out, _) = run_ok(
            r#"
            global sum = 0;
            fn worker(k) {
                lock(1);
                sum = sum + k;
                unlock(1);
                return k * 10;
            }
            fn main() {
                let t1 = spawn(&worker, 3);
                let t2 = spawn(&worker, 4);
                let r1 = join(t1);
                let r2 = join(t2);
                return sum * 1000 + r1 + r2;
            }
            "#,
            &VosConfig::new(),
        );
        assert_eq!(out.result, Value::Int(7070));
        assert_eq!(out.stats.threads_spawned, 2);
    }

    #[test]
    fn join_unknown_tid_traps() {
        let (out, _) = run("fn main() { join(99); }", &VosConfig::new());
        assert!(matches!(out.unwrap_err(), Trap::BadJoin { .. }));
    }

    #[test]
    fn spawn_target_arity_checked() {
        let (out, _) = run(
            "fn w(a, b) { return 0; } fn main() { spawn(&w, 1); }",
            &VosConfig::new(),
        );
        assert!(matches!(out.unwrap_err(), Trap::BadSpawnTarget { .. }));
    }

    #[test]
    fn lock_serializes_racy_increments() {
        let (out, _) = run_ok(
            r#"
            global n = 0;
            fn worker(reps) {
                for (let i = 0; i < reps; i = i + 1) {
                    lock(7);
                    n = n + 1;
                    unlock(7);
                }
                return 0;
            }
            fn main() {
                let t1 = spawn(&worker, 200);
                let t2 = spawn(&worker, 200);
                join(t1); join(t2);
                return n;
            }
            "#,
            &VosConfig::new(),
        );
        assert_eq!(out.result, Value::Int(400));
    }

    #[test]
    fn setjmp_longjmp_roundtrip() {
        let (out, vos) = run_ok(
            r#"
            fn risky(depth) {
                if (depth > 2) { longjmp(7); }
                return risky(depth + 1);
            }
            fn main() {
                let code = setjmp();
                if (code == 0) {
                    write(1, "try;");
                    risky(0);
                    write(1, "unreached;");
                } else {
                    write(1, "caught" + str(code) + ";");
                }
            }
            "#,
            &VosConfig::new(),
        );
        assert_eq!(stdout(&vos), "try;caught7;");
        assert_eq!(out.exit_code, 0);
    }

    #[test]
    fn longjmp_without_setjmp_traps() {
        let (out, _) = run("fn main() { longjmp(1); }", &VosConfig::new());
        assert_eq!(out.unwrap_err(), Trap::LongjmpWithoutSetjmp);
    }

    #[test]
    fn longjmp_zero_becomes_one() {
        let (out, _) = run_ok(
            r#"fn main() {
                let code = setjmp();
                if (code == 0) { longjmp(0); }
                return code;
            }"#,
            &VosConfig::new(),
        );
        assert_eq!(out.result, Value::Int(1));
    }

    #[test]
    fn progress_keys_reflect_compensation() {
        // Both branches must reach the final send with the same counter.
        let src = r#"fn main() {
            let fd = open("/in", 0);
            let v = read(fd, 4);
            if (v == "big") {
                write(1, "a");
                write(1, "b");
            } else {
                write(1, "c");
            }
            send(connect("out"), "done");
        }"#;
        let keys_for = |input: &str| {
            let program =
                ldx_instrument::instrument(&ldx_ir::lower(&ldx_lang::compile(src).unwrap()))
                    .into_program();
            let cfg = VosConfig::new()
                .file("/in", input)
                .peer("out", PeerBehavior::Echo);
            let vos = Arc::new(Vos::new(&cfg));
            let hooks = Arc::new(RecordingHooks::new(NativeHooks::new(vos)));
            let events = hooks.events_handle();
            run_program(Arc::new(program), hooks, ExecConfig::default()).unwrap();
            let evs = events.lock();
            evs.iter()
                .find(|e| e.sys == ldx_lang::Syscall::Send)
                .unwrap()
                .key
                .clone()
        };
        let k_big = keys_for("big");
        let k_small = keys_for("x");
        assert_eq!(
            k_big.cmp_progress(&k_small),
            ProgressOrder::Equal,
            "the send must align across paths: {k_big} vs {k_small}"
        );
    }

    #[test]
    fn progress_keys_in_loops_carry_epochs() {
        let src = r#"fn main() {
            let fd = open("/in", 0);
            let n = int(read(fd, 4));
            for (let i = 0; i < n; i = i + 1) {
                write(1, str(i));
            }
            close(fd);
        }"#;
        let program = ldx_instrument::instrument(&ldx_ir::lower(&ldx_lang::compile(src).unwrap()))
            .into_program();
        let vos = Arc::new(Vos::new(&VosConfig::new().file("/in", "3")));
        let hooks = Arc::new(RecordingHooks::new(NativeHooks::new(vos)));
        let events = hooks.events_handle();
        run_program(Arc::new(program), hooks, ExecConfig::default()).unwrap();
        let evs = events.lock();
        let writes: Vec<_> = evs
            .iter()
            .filter(|e| e.sys == ldx_lang::Syscall::Write)
            .collect();
        assert_eq!(writes.len(), 3);
        // All three writes share the same scalar but have distinct epochs.
        let scalars: Vec<u64> = writes.iter().map(|e| e.key.frames[0].cnt).collect();
        assert_eq!(scalars[0], scalars[1]);
        assert_eq!(scalars[1], scalars[2]);
        let epochs: Vec<u64> = writes.iter().map(|e| e.key.frames[0].loops[0].1).collect();
        assert_eq!(epochs, vec![0, 1, 2]);
        // The close after the loop is strictly ahead of every write.
        let close = evs
            .iter()
            .find(|e| e.sys == ldx_lang::Syscall::Close)
            .unwrap();
        for w in &writes {
            assert_eq!(close.key.cmp_progress(&w.key), ProgressOrder::Ahead);
        }
    }

    #[test]
    fn progress_keys_fresh_frames_for_indirect_calls() {
        let src = r#"
            fn emit(x) { write(1, str(x)); return 0; }
            fn main() {
                let f = &emit;
                write(1, "pre");
                f(1);
                write(1, "post");
            }
        "#;
        let program = ldx_instrument::instrument(&ldx_ir::lower(&ldx_lang::compile(src).unwrap()))
            .into_program();
        let vos = Arc::new(Vos::new(&VosConfig::new()));
        let hooks = Arc::new(RecordingHooks::new(NativeHooks::new(vos)));
        let events = hooks.events_handle();
        run_program(Arc::new(program), hooks, ExecConfig::default()).unwrap();
        let evs = events.lock();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].key.frames.len(), 1, "pre: root frame only");
        assert_eq!(evs[1].key.frames.len(), 2, "emit: fresh frame");
        assert_eq!(evs[1].key.frames[1].cnt, 1, "inside call: fresh scalar");
        assert_eq!(evs[2].key.frames.len(), 1, "post: restored");
        assert_eq!(
            evs[2].key.cmp_progress(&evs[1].key),
            ProgressOrder::Ahead,
            "post-call is ahead of in-call"
        );
    }

    #[test]
    fn stats_track_counters() {
        let (out, _) = run_ok(
            r#"fn main() {
                write(1, "a");
                write(1, "b");
                write(1, "c");
            }"#,
            &VosConfig::new(),
        );
        assert_eq!(out.stats.syscalls, 3);
        assert_eq!(out.stats.cnt_max, 3);
        assert_eq!(out.stats.cnt_avg(), 2.0);
        assert_eq!(out.stats.max_counter_depth, 1);
    }

    #[test]
    fn main_without_explicit_return_yields_zero() {
        let (out, _) = run_ok("fn main() { let x = 5; }", &VosConfig::new());
        assert_eq!(out.result, Value::Int(0));
        assert_eq!(out.exit_code, 0);
    }

    #[test]
    fn string_indexing_and_building() {
        let (out, vos) = run_ok(
            r#"fn main() {
                let s = "dual";
                let out = "";
                for (let i = len(s) - 1; i >= 0; i = i - 1) {
                    out = out + s[i];
                }
                write(1, out);
                return find("execution", "cut");
            }"#,
            &VosConfig::new(),
        );
        assert_eq!(stdout(&vos), "laud");
        assert_eq!(out.result, Value::Int(3));
    }
}
