//! Runtime values and operator semantics.

use crate::trap::Trap;
use ldx_ir::FuncId;
use ldx_lang::{BinaryOp, UnaryOp};
use std::fmt;
use std::sync::Arc;

/// A dynamically typed Lx value.
///
/// String and array payloads are reference-counted so `clone()` — the
/// interpreter's hottest operation (locals copies, call argument
/// gathering, syscall argument capture) — is a refcount bump, not a deep
/// copy. Value semantics are preserved: the only in-place mutation path,
/// [`store_index`], goes through [`Arc::make_mut`] and copies on write
/// when the payload is shared.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// A 64-bit integer.
    Int(i64),
    /// A string (immutable, shared).
    Str(Arc<str>),
    /// An array (copy-on-write, shared until mutated).
    Arr(Arc<Vec<Value>>),
    /// A first-class function reference (`&f`).
    Func(FuncId),
}

impl Value {
    /// Builds a string value from anything convertible to a shared str.
    pub fn str(s: impl Into<Arc<str>>) -> Value {
        Value::Str(s.into())
    }

    /// Builds an array value from owned elements.
    pub fn arr(elems: Vec<Value>) -> Value {
        Value::Arr(Arc::new(elems))
    }

    /// Lx truthiness: nonzero ints, nonempty strings/arrays, any function.
    pub fn truthy(&self) -> bool {
        match self {
            Value::Int(v) => *v != 0,
            Value::Str(s) => !s.is_empty(),
            Value::Arr(a) => !a.is_empty(),
            Value::Func(_) => true,
        }
    }

    /// The value as an integer, trapping otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`Trap::TypeError`] for non-integers.
    pub fn as_int(&self) -> Result<i64, Trap> {
        match self {
            Value::Int(v) => Ok(*v),
            other => Err(Trap::TypeError {
                expected: "integer",
                found: other.type_name(),
            }),
        }
    }

    /// The value as a string slice, trapping otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`Trap::TypeError`] for non-strings.
    pub fn as_str(&self) -> Result<&str, Trap> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(Trap::TypeError {
                expected: "string",
                found: other.type_name(),
            }),
        }
    }

    /// The value's type name (for diagnostics).
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "integer",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Func(_) => "function",
        }
    }

    /// Converts to the canonical string form (the `str()` builtin).
    pub fn stringify(&self) -> String {
        match self {
            Value::Int(v) => v.to_string(),
            Value::Str(s) => s.to_string(),
            Value::Arr(a) => {
                let inner: Vec<String> = a.iter().map(Value::stringify).collect();
                format!("[{}]", inner.join(", "))
            }
            Value::Func(f) => format!("<fn {f}>"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.stringify())
    }
}

/// Applies a binary operator (`&&`/`||` are lowered to control flow and
/// never reach here).
///
/// # Errors
///
/// Returns [`Trap`] on type mismatches and division by zero.
pub fn eval_binary(op: BinaryOp, lhs: &Value, rhs: &Value) -> Result<Value, Trap> {
    use BinaryOp::*;
    match op {
        Add => match (lhs, rhs) {
            (Value::Int(a), Value::Int(b)) => Ok(Value::Int(a.wrapping_add(*b))),
            (Value::Arr(a), Value::Arr(b)) => {
                let mut out = a.as_ref().clone();
                out.extend(b.iter().cloned());
                Ok(Value::arr(out))
            }
            // String concatenation stringifies the other side, mirroring
            // scripting-language `+`.
            (Value::Str(_), _) | (_, Value::Str(_)) => Ok(Value::str(format!(
                "{}{}",
                lhs.stringify(),
                rhs.stringify()
            ))),
            _ => Err(Trap::TypeError {
                expected: "addable values",
                found: lhs.type_name(),
            }),
        },
        Sub => Ok(Value::Int(lhs.as_int()?.wrapping_sub(rhs.as_int()?))),
        Mul => Ok(Value::Int(lhs.as_int()?.wrapping_mul(rhs.as_int()?))),
        Div => {
            let d = rhs.as_int()?;
            if d == 0 {
                return Err(Trap::DivisionByZero);
            }
            Ok(Value::Int(lhs.as_int()?.wrapping_div(d)))
        }
        Rem => {
            let d = rhs.as_int()?;
            if d == 0 {
                return Err(Trap::DivisionByZero);
            }
            Ok(Value::Int(lhs.as_int()?.wrapping_rem(d)))
        }
        Eq => Ok(Value::Int(i64::from(lhs == rhs))),
        Ne => Ok(Value::Int(i64::from(lhs != rhs))),
        Lt | Le | Gt | Ge => {
            let ord = match (lhs, rhs) {
                (Value::Int(a), Value::Int(b)) => a.cmp(b),
                (Value::Str(a), Value::Str(b)) => a.cmp(b),
                _ => {
                    return Err(Trap::TypeError {
                        expected: "comparable values of the same type",
                        found: rhs.type_name(),
                    })
                }
            };
            let result = match op {
                Lt => ord.is_lt(),
                Le => ord.is_le(),
                Gt => ord.is_gt(),
                Ge => ord.is_ge(),
                _ => unreachable!(),
            };
            Ok(Value::Int(i64::from(result)))
        }
        And | Or => unreachable!("short-circuit operators are lowered to control flow"),
    }
}

/// Applies a unary operator.
///
/// # Errors
///
/// Returns [`Trap::TypeError`] when negating a non-integer.
pub fn eval_unary(op: UnaryOp, v: &Value) -> Result<Value, Trap> {
    match op {
        UnaryOp::Neg => Ok(Value::Int(v.as_int()?.wrapping_neg())),
        UnaryOp::Not => Ok(Value::Int(i64::from(!v.truthy()))),
    }
}

/// Indexes into an array or string (1-character string results).
///
/// # Errors
///
/// Returns [`Trap::IndexOutOfBounds`] or [`Trap::TypeError`].
pub fn eval_index(base: &Value, index: &Value) -> Result<Value, Trap> {
    let i = index.as_int()?;
    match base {
        Value::Arr(a) => {
            let idx = usize::try_from(i).map_err(|_| Trap::IndexOutOfBounds {
                index: i,
                len: a.len(),
            })?;
            a.get(idx).cloned().ok_or(Trap::IndexOutOfBounds {
                index: i,
                len: a.len(),
            })
        }
        Value::Str(s) => {
            let len = s.chars().count();
            let idx = usize::try_from(i).map_err(|_| Trap::IndexOutOfBounds { index: i, len })?;
            s.chars()
                .nth(idx)
                .map(|c| Value::str(&*c.encode_utf8(&mut [0u8; 4])))
                .ok_or(Trap::IndexOutOfBounds { index: i, len })
        }
        other => Err(Trap::TypeError {
            expected: "array or string",
            found: other.type_name(),
        }),
    }
}

/// Stores into an element of an array value in place.
///
/// # Errors
///
/// Returns [`Trap::IndexOutOfBounds`] or [`Trap::TypeError`].
pub fn store_index(base: &mut Value, index: &Value, v: Value) -> Result<(), Trap> {
    let i = index.as_int()?;
    match base {
        Value::Arr(a) => {
            let len = a.len();
            let idx = usize::try_from(i).map_err(|_| Trap::IndexOutOfBounds { index: i, len })?;
            // Copy-on-write: only clones the backing Vec when it is shared
            // with another value.
            match Arc::make_mut(a).get_mut(idx) {
                Some(slot) => {
                    *slot = v;
                    Ok(())
                }
                None => Err(Trap::IndexOutOfBounds { index: i, len }),
            }
        }
        other => Err(Trap::TypeError {
            expected: "array",
            found: other.type_name(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int(v: i64) -> Value {
        Value::Int(v)
    }
    fn s(v: &str) -> Value {
        Value::Str(v.into())
    }

    #[test]
    fn truthiness() {
        assert!(int(1).truthy());
        assert!(!int(0).truthy());
        assert!(s("x").truthy());
        assert!(!s("").truthy());
        assert!(!Value::arr(vec![]).truthy());
        assert!(Value::arr(vec![int(0)]).truthy());
        assert!(Value::Func(FuncId(0)).truthy());
    }

    #[test]
    fn arithmetic() {
        assert_eq!(
            eval_binary(BinaryOp::Add, &int(2), &int(3)).unwrap(),
            int(5)
        );
        assert_eq!(
            eval_binary(BinaryOp::Sub, &int(2), &int(3)).unwrap(),
            int(-1)
        );
        assert_eq!(
            eval_binary(BinaryOp::Mul, &int(4), &int(3)).unwrap(),
            int(12)
        );
        assert_eq!(
            eval_binary(BinaryOp::Div, &int(7), &int(2)).unwrap(),
            int(3)
        );
        assert_eq!(
            eval_binary(BinaryOp::Rem, &int(7), &int(2)).unwrap(),
            int(1)
        );
    }

    #[test]
    fn division_by_zero_traps() {
        assert_eq!(
            eval_binary(BinaryOp::Div, &int(1), &int(0)),
            Err(Trap::DivisionByZero)
        );
        assert_eq!(
            eval_binary(BinaryOp::Rem, &int(1), &int(0)),
            Err(Trap::DivisionByZero)
        );
    }

    #[test]
    fn string_concatenation() {
        assert_eq!(
            eval_binary(BinaryOp::Add, &s("a"), &s("b")).unwrap(),
            s("ab")
        );
        assert_eq!(
            eval_binary(BinaryOp::Add, &s("n="), &int(3)).unwrap(),
            s("n=3")
        );
        assert_eq!(
            eval_binary(BinaryOp::Add, &int(3), &s("!")).unwrap(),
            s("3!")
        );
    }

    #[test]
    fn array_concatenation() {
        let a = Value::arr(vec![int(1)]);
        let b = Value::arr(vec![int(2)]);
        assert_eq!(
            eval_binary(BinaryOp::Add, &a, &b).unwrap(),
            Value::arr(vec![int(1), int(2)])
        );
    }

    #[test]
    fn comparisons() {
        assert_eq!(eval_binary(BinaryOp::Lt, &int(1), &int(2)).unwrap(), int(1));
        assert_eq!(eval_binary(BinaryOp::Ge, &int(1), &int(2)).unwrap(), int(0));
        assert_eq!(eval_binary(BinaryOp::Lt, &s("a"), &s("b")).unwrap(), int(1));
        assert!(eval_binary(BinaryOp::Lt, &int(1), &s("b")).is_err());
    }

    #[test]
    fn equality_across_types_is_false_not_error() {
        assert_eq!(eval_binary(BinaryOp::Eq, &int(1), &s("1")).unwrap(), int(0));
        assert_eq!(eval_binary(BinaryOp::Ne, &int(1), &s("1")).unwrap(), int(1));
    }

    #[test]
    fn unary_ops() {
        assert_eq!(eval_unary(UnaryOp::Neg, &int(5)).unwrap(), int(-5));
        assert_eq!(eval_unary(UnaryOp::Not, &int(0)).unwrap(), int(1));
        assert_eq!(eval_unary(UnaryOp::Not, &s("x")).unwrap(), int(0));
        assert!(eval_unary(UnaryOp::Neg, &s("x")).is_err());
    }

    #[test]
    fn indexing() {
        let arr = Value::arr(vec![int(7), int(8)]);
        assert_eq!(eval_index(&arr, &int(1)).unwrap(), int(8));
        assert!(matches!(
            eval_index(&arr, &int(2)),
            Err(Trap::IndexOutOfBounds { .. })
        ));
        assert!(matches!(
            eval_index(&arr, &int(-1)),
            Err(Trap::IndexOutOfBounds { .. })
        ));
        assert_eq!(eval_index(&s("héllo"), &int(1)).unwrap(), s("é"));
    }

    #[test]
    fn store_index_mutates() {
        let mut arr = Value::arr(vec![int(0), int(0)]);
        store_index(&mut arr, &int(1), int(9)).unwrap();
        assert_eq!(arr, Value::arr(vec![int(0), int(9)]));
        assert!(store_index(&mut arr, &int(5), int(1)).is_err());
        let mut notarr = int(3);
        assert!(store_index(&mut notarr, &int(0), int(1)).is_err());
    }

    #[test]
    fn stringify_forms() {
        assert_eq!(int(-3).stringify(), "-3");
        assert_eq!(s("x").stringify(), "x");
        assert_eq!(Value::arr(vec![int(1), s("a")]).stringify(), "[1, a]");
        assert!(Value::Func(FuncId(2)).stringify().contains("f2"));
    }

    #[test]
    fn wrapping_semantics() {
        assert_eq!(
            eval_binary(BinaryOp::Add, &int(i64::MAX), &int(1)).unwrap(),
            int(i64::MIN)
        );
        assert_eq!(
            eval_unary(UnaryOp::Neg, &int(i64::MIN)).unwrap(),
            int(i64::MIN)
        );
    }
}
