//! Runtime traps (Lx program faults and resource-limit hits).

use std::error::Error;
use std::fmt;

/// A fatal condition during Lx execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Trap {
    /// An operator or builtin received the wrong type.
    TypeError {
        /// What was required.
        expected: &'static str,
        /// What was found.
        found: &'static str,
    },
    /// Integer division or remainder by zero.
    DivisionByZero,
    /// An array/string index was out of range.
    IndexOutOfBounds {
        /// The offending index.
        index: i64,
        /// The container length.
        len: usize,
    },
    /// An indirect call's target took a different number of arguments.
    ArityMismatch {
        /// The callee's name.
        callee: String,
        /// Expected parameter count.
        expected: usize,
        /// Provided argument count.
        given: usize,
    },
    /// An indirect call through a non-function value.
    NotCallable {
        /// The value's type.
        found: &'static str,
    },
    /// `spawn`'s first argument must be a function reference taking one
    /// parameter.
    BadSpawnTarget {
        /// Description of the problem.
        detail: String,
    },
    /// `join` on an unknown or already-joined thread id.
    BadJoin {
        /// The offending tid.
        tid: i64,
    },
    /// `longjmp` without a live `setjmp`.
    LongjmpWithoutSetjmp,
    /// The per-thread step budget was exhausted (runaway loop guard).
    StepLimitExceeded {
        /// The configured limit.
        limit: u64,
    },
    /// The activation stack grew past the configured limit.
    StackOverflow {
        /// The configured limit.
        limit: usize,
    },
    /// A virtual OS interface misuse (wraps [`ldx_vos::VosError`]).
    Vos {
        /// The rendered error.
        message: String,
    },
    /// The dual-execution engine aborted this execution (e.g. its peer
    /// trapped, or the analysis decided to stop early).
    Aborted {
        /// Why.
        reason: String,
    },
    /// A thread panicked at the Rust level (collected at join).
    ThreadPanicked,
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::TypeError { expected, found } => {
                write!(f, "type error: expected {expected}, found {found}")
            }
            Trap::DivisionByZero => write!(f, "division by zero"),
            Trap::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for length {len}")
            }
            Trap::ArityMismatch {
                callee,
                expected,
                given,
            } => write!(
                f,
                "`{callee}` takes {expected} argument(s), {given} given in indirect call"
            ),
            Trap::NotCallable { found } => write!(f, "cannot call a {found}"),
            Trap::BadSpawnTarget { detail } => write!(f, "bad spawn target: {detail}"),
            Trap::BadJoin { tid } => write!(f, "join on unknown thread {tid}"),
            Trap::LongjmpWithoutSetjmp => write!(f, "longjmp without a live setjmp"),
            Trap::StepLimitExceeded { limit } => {
                write!(f, "step limit of {limit} exceeded")
            }
            Trap::StackOverflow { limit } => {
                write!(f, "activation stack exceeded {limit} frames")
            }
            Trap::Vos { message } => write!(f, "virtual OS misuse: {message}"),
            Trap::Aborted { reason } => write!(f, "execution aborted: {reason}"),
            Trap::ThreadPanicked => write!(f, "an Lx thread panicked internally"),
        }
    }
}

impl Error for Trap {}

impl From<ldx_vos::VosError> for Trap {
    fn from(e: ldx_vos::VosError) -> Self {
        Trap::Vos {
            message: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let traps = [
            Trap::TypeError {
                expected: "integer",
                found: "string",
            },
            Trap::DivisionByZero,
            Trap::IndexOutOfBounds { index: 5, len: 2 },
            Trap::StepLimitExceeded { limit: 10 },
            Trap::Aborted {
                reason: "peer trapped".into(),
            },
        ];
        for t in traps {
            assert!(!t.to_string().is_empty());
        }
    }

    #[test]
    fn vos_error_converts() {
        let e = ldx_vos::VosError::Unsupported { syscall: "spawn" };
        let t: Trap = e.into();
        assert!(matches!(t, Trap::Vos { .. }));
    }
}
